// Package erasure implements a systematic Reed-Solomon erasure code
// RS(n = k+m, k) over GF(2^8), replacing the Jerasure library the paper
// uses. A stripe holds k equally sized data shards and m parity shards; any
// m shard losses are recoverable from the surviving k.
//
// Beyond the standard Encode/Reconstruct pair the codec supports
// UpdateParity, the delta-encoding path CoREC needs when a single encoded
// object is overwritten: parity is patched from the XOR-difference of the
// old and new data shard without touching the other k-1 data shards. This
// is exactly the "read old data, recompute parity" cost the paper charges
// to erasure-coded writes.
package erasure

import (
	"errors"
	"fmt"

	"corec/internal/gf256"
	"corec/internal/matrix"
)

// Common codec errors.
var (
	ErrShardCount = errors.New("erasure: wrong number of shards")
	ErrShardSize  = errors.New("erasure: shards have unequal or zero size")
	ErrTooFewGood = errors.New("erasure: too few surviving shards to reconstruct")
	ErrVerify     = errors.New("erasure: parity verification failed")
)

// Codec is a reusable Reed-Solomon encoder/decoder for fixed (k, m). It is
// safe for concurrent use: coding state is immutable after construction and
// the optional decode-matrix cache is internally synchronized.
type Codec struct {
	k, m int
	gen  *matrix.Matrix // (k+m) x k systematic generator
	con  Construction
	// workers bounds the range parallelism of Encode/Reconstruct. 1 keeps
	// the serial row-major path; >1 selects the chunked fused engine in
	// parallel.go (which is also faster on a single core).
	workers int
	// dec, when non-nil, caches inverted decode matrices keyed by
	// (construction, k, m, survivor rows) so repeated degraded reads of the
	// same loss pattern skip Gaussian elimination.
	dec *matrix.InverseCache
}

// DefaultDecodeCacheEntries is the decode-matrix cache capacity WithDecodeCache
// uses when given a non-positive size. Loss patterns come from server
// failures, so live distinct patterns are few; 64 entries cover many
// simultaneous patterns at ~k*k bytes each.
const DefaultDecodeCacheEntries = 64

// Construction selects the generator-matrix family.
type Construction int

// Generator constructions. Both are systematic MDS codes; Vandermonde is
// the classic Reed-Solomon derivation, Cauchy the alternative Jerasure
// popularized (cheaper matrix construction, identical coding guarantees).
const (
	Vandermonde Construction = iota
	Cauchy
)

// String implements fmt.Stringer.
func (c Construction) String() string {
	if c == Cauchy {
		return "cauchy"
	}
	return "vandermonde"
}

// New constructs a codec with k data shards and m parity shards using the
// Vandermonde-derived generator.
func New(k, m int) (*Codec, error) {
	return NewWithConstruction(k, m, Vandermonde)
}

// NewWithConstruction selects the generator family explicitly.
func NewWithConstruction(k, m int, con Construction) (*Codec, error) {
	if k <= 0 {
		return nil, fmt.Errorf("erasure: data shard count %d must be positive", k)
	}
	if m <= 0 {
		return nil, fmt.Errorf("erasure: parity shard count %d must be positive", m)
	}
	var gen *matrix.Matrix
	var err error
	switch con {
	case Vandermonde:
		gen, err = matrix.RSGenerator(k, m)
	case Cauchy:
		gen, err = matrix.CauchyRSGenerator(k, m)
	default:
		return nil, fmt.Errorf("erasure: unknown construction %d", int(con))
	}
	if err != nil {
		return nil, err
	}
	return &Codec{k: k, m: m, gen: gen, con: con, workers: 1}, nil
}

// WithWorkers returns a copy of the codec whose Encode/Reconstruct shard the
// stripe across up to n pool workers. n <= 0 selects DefaultWorkers();
// n == 1 restores the serial row-major path. The copy shares the generator
// and any decode-matrix cache with the receiver.
func (c *Codec) WithWorkers(n int) *Codec {
	if n <= 0 {
		n = DefaultWorkers()
	}
	cp := *c
	cp.workers = n
	return &cp
}

// WithDecodeCache returns a copy of the codec that caches inverted decode
// matrices in a fresh LRU of the given capacity (DefaultDecodeCacheEntries
// when entries <= 0). The cache is shared by all further copies made from
// the returned codec.
func (c *Codec) WithDecodeCache(entries int) *Codec {
	if entries <= 0 {
		entries = DefaultDecodeCacheEntries
	}
	cp := *c
	cp.dec = matrix.NewInverseCache(entries)
	return &cp
}

// Workers reports the codec's range-parallelism bound.
func (c *Codec) Workers() int { return c.workers }

// DecodeCacheStats returns a snapshot of the decode-matrix cache counters.
// ok is false when the codec has no cache.
func (c *Codec) DecodeCacheStats() (stats matrix.CacheStats, ok bool) {
	if c.dec == nil {
		return matrix.CacheStats{}, false
	}
	return c.dec.Stats(), true
}

// DataShards returns k, the number of data shards per stripe.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m, the number of parity shards per stripe.
func (c *Codec) ParityShards() int { return c.m }

// TotalShards returns k+m.
func (c *Codec) TotalShards() int { return c.k + c.m }

// StorageEfficiency returns k/(k+m), the fraction of raw storage holding
// real data (E_e in the paper's model).
func (c *Codec) StorageEfficiency() float64 {
	return float64(c.k) / float64(c.k+c.m)
}

func (c *Codec) checkShards(shards [][]byte, allowNil bool) (size int, err error) {
	if len(shards) != c.k+c.m {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), c.k+c.m)
	}
	size = -1
	for _, s := range shards {
		if s == nil {
			if !allowNil {
				return 0, fmt.Errorf("%w: nil shard", ErrShardSize)
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("%w: %d vs %d", ErrShardSize, len(s), size)
		}
	}
	if size <= 0 {
		return 0, fmt.Errorf("%w: no shard data", ErrShardSize)
	}
	return size, nil
}

// Encode computes the m parity shards from the first k data shards,
// overwriting shards[k:]. All k+m shards must be allocated with equal size.
// With workers > 1 (see WithWorkers) the stripe is sharded across the range
// engine; the output is byte-identical to the serial path.
func (c *Codec) Encode(shards [][]byte) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	if c.workers > 1 {
		run(size, c.workers, func(lo, hi int) { c.encodeRange(shards, lo, hi) })
		return nil
	}
	for p := 0; p < c.m; p++ {
		row := c.gen.Row(c.k + p)
		out := shards[c.k+p]
		gf256.MulSlice(row[0], shards[0], out)
		for d := 1; d < c.k; d++ {
			gf256.MulAddSlice(row[d], shards[d], out)
		}
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
// It returns nil when the stripe verifies and ErrVerify when it does not.
func (c *Codec) Verify(shards [][]byte) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	for p := 0; p < c.m; p++ {
		row := c.gen.Row(c.k + p)
		gf256.MulSlice(row[0], shards[0], buf)
		for d := 1; d < c.k; d++ {
			gf256.MulAddSlice(row[d], shards[d], buf)
		}
		parity := shards[c.k+p]
		for i := range buf {
			if buf[i] != parity[i] {
				return ErrVerify
			}
		}
	}
	return nil
}

// Reconstruct fills in the missing (nil) shards in place. Missing shards are
// identified by nil entries; up to m shards may be missing. Surviving shards
// are never modified. Reconstructed shards are freshly allocated.
func (c *Codec) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

// ReconstructData fills in only the missing data shards, skipping the
// (cheaper) regeneration of lost parity. This is the degraded-read path: a
// client needs the data now; parity can be repaired lazily.
func (c *Codec) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

func (c *Codec) reconstruct(shards [][]byte, dataOnly bool) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	var missing, present []int
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
		} else {
			present = append(present, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: %d survivors, need %d", ErrTooFewGood, len(present), c.k)
	}
	// Decode matrix: invert k surviving generator rows, mapping survivors
	// back to the original data shards.
	rows := present[:c.k]
	dec, err := c.decodeMatrix(rows)
	if err != nil {
		// Cannot happen for an MDS generator; surface it defensively.
		return fmt.Errorf("erasure: decode matrix singular: %w", err)
	}
	if c.workers > 1 {
		return c.reconstructParallel(shards, rows, dec, missing, dataOnly, size)
	}
	// Recover missing data shards first.
	var recoveredData [][]byte
	dataMissing := false
	for _, idx := range missing {
		if idx < c.k {
			dataMissing = true
		}
	}
	if dataMissing {
		recoveredData = make([][]byte, c.k)
		for d := 0; d < c.k; d++ {
			if shards[d] != nil {
				recoveredData[d] = shards[d]
				continue
			}
			out := make([]byte, size)
			row := dec.Row(d)
			first := true
			for j, srcIdx := range rows {
				coef := row[j]
				if coef == 0 {
					continue
				}
				if first {
					gf256.MulSlice(coef, shards[srcIdx], out)
					first = false
				} else {
					gf256.MulAddSlice(coef, shards[srcIdx], out)
				}
			}
			if first { // all coefficients zero: the shard is all zeros
				for i := range out {
					out[i] = 0
				}
			}
			recoveredData[d] = out
		}
		for d := 0; d < c.k; d++ {
			if shards[d] == nil {
				shards[d] = recoveredData[d]
			}
		}
	}
	if dataOnly {
		return nil
	}
	// Re-encode any missing parity from the (now complete) data shards.
	for _, idx := range missing {
		if idx < c.k {
			continue
		}
		out := make([]byte, size)
		row := c.gen.Row(idx)
		gf256.MulSlice(row[0], shards[0], out)
		for d := 1; d < c.k; d++ {
			gf256.MulAddSlice(row[d], shards[d], out)
		}
		shards[idx] = out
	}
	return nil
}

// decodeMatrix returns the inverse of the generator rows selected by the
// survivor set, consulting the decode-matrix cache when one is attached.
// Cached matrices are shared and read-only.
func (c *Codec) decodeMatrix(rows []int) (*matrix.Matrix, error) {
	var key string
	if c.dec != nil {
		kb := make([]byte, 0, 3+len(rows))
		kb = append(kb, byte(c.con), byte(c.k), byte(c.m))
		for _, r := range rows {
			kb = append(kb, byte(r))
		}
		key = string(kb)
		if inv, ok := c.dec.Get(key); ok {
			return inv, nil
		}
	}
	inv, err := c.gen.SelectRows(rows).Invert()
	if err != nil {
		return nil, err
	}
	if c.dec != nil {
		c.dec.Add(key, inv)
	}
	return inv, nil
}

// reconstructParallel is the workers>1 arm of reconstruct: every missing
// shard gets a fresh buffer up front, byte-ranges of the stripe are fanned
// out to the range engine, and the recovered buffers are attached to the
// stripe only once every range has completed.
func (c *Codec) reconstructParallel(shards [][]byte, rows []int, dec *matrix.Matrix, missing []int, dataOnly bool, size int) error {
	newBufs := make([][]byte, c.k+c.m)
	var needed []int
	for _, idx := range missing {
		if dataOnly && idx >= c.k {
			continue
		}
		newBufs[idx] = make([]byte, size)
		needed = append(needed, idx)
	}
	if len(needed) == 0 {
		return nil
	}
	survivors := make([][]byte, len(rows))
	for j, idx := range rows {
		survivors[j] = shards[idx]
	}
	// Parity re-encoding reads the full data view: surviving data shards
	// plus the buffers being recovered (each range fills its own window of
	// those buffers before touching parity, so the view is complete there).
	dataView := make([][]byte, c.k)
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			dataView[d] = shards[d]
		} else {
			dataView[d] = newBufs[d]
		}
	}
	run(size, c.workers, func(lo, hi int) {
		c.reconstructRange(newBufs, survivors, dataView, dec, needed, dataOnly, lo, hi)
	})
	for _, idx := range needed {
		shards[idx] = newBufs[idx]
	}
	return nil
}

// UpdateParity patches the parity shards after data shard dataIndex changed
// from oldData to newData, without reading the other data shards. Each
// parity p is updated as parity ^= G[k+p][dataIndex] * (old ^ new), which is
// the algebraic identity behind the paper's "update one object => read old
// data, recompute parity" cost accounting (but cheaper: only the old copy of
// the changed shard is needed, which the staging server has locally).
func (c *Codec) UpdateParity(dataIndex int, oldData, newData []byte, parity [][]byte) error {
	if dataIndex < 0 || dataIndex >= c.k {
		return fmt.Errorf("erasure: data index %d out of range [0,%d)", dataIndex, c.k)
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity shards, want %d", ErrShardCount, len(parity), c.m)
	}
	if len(oldData) != len(newData) {
		return fmt.Errorf("%w: old %d vs new %d", ErrShardSize, len(oldData), len(newData))
	}
	delta := make([]byte, len(oldData))
	for i := range delta {
		delta[i] = oldData[i] ^ newData[i]
	}
	for p := 0; p < c.m; p++ {
		if len(parity[p]) != len(delta) {
			return fmt.Errorf("%w: parity %d has size %d, want %d", ErrShardSize, p, len(parity[p]), len(delta))
		}
		coef := c.gen.At(c.k+p, dataIndex)
		gf256.MulAddSlice(coef, delta, parity[p])
	}
	return nil
}

// Split slices data into k equally sized shards, zero-padding the tail, and
// allocates m empty parity shards, returning a ready-to-Encode stripe and
// the shard size. The input is copied.
func (c *Codec) Split(data []byte) ([][]byte, int) {
	shardSize := (len(data) + c.k - 1) / c.k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k+c.m; i++ {
		shards[i] = make([]byte, shardSize)
	}
	for i := 0; i < c.k; i++ {
		lo := i * shardSize
		if lo >= len(data) {
			break
		}
		hi := lo + shardSize
		if hi > len(data) {
			hi = len(data)
		}
		copy(shards[i], data[lo:hi])
	}
	return shards, shardSize
}

// Join is the inverse of Split: it concatenates the k data shards and trims
// the result to size bytes.
func (c *Codec) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, fmt.Errorf("%w: got %d, want at least %d", ErrShardCount, len(shards), c.k)
	}
	out := make([]byte, 0, size)
	for i := 0; i < c.k && len(out) < size; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("%w: data shard %d missing", ErrShardSize, i)
		}
		need := size - len(out)
		if need > len(shards[i]) {
			need = len(shards[i])
		}
		out = append(out, shards[i][:need]...)
	}
	if len(out) != size {
		return nil, fmt.Errorf("erasure: joined %d bytes, want %d", len(out), size)
	}
	return out, nil
}
