package erasure

// Parallel erasure engine: a bounded worker pool that shards Encode and
// Reconstruct across disjoint byte-ranges of the stripe, plus the fused,
// cache-blocked inner loops it runs on each range.
//
// Two independent effects make this path fast:
//
//   - Fused kernels. Row-major encoding makes k read-modify-write passes
//     over every parity shard. The range engine instead walks the stripe in
//     chunkBytes blocks and, per block, accumulates four data sources at a
//     time into the parity chunk (gf256.MulAddSlice4), so the destination
//     chunk is written once per group of four sources and stays resident in
//     L1/L2 across the whole generator row. On a single core this alone
//     measures ~3x over the row-major loop on stripe-sized data.
//   - Range parallelism. Byte-ranges of a stripe are independent, so they
//     are fanned out to a pool of at most GOMAXPROCS goroutines. Ranges are
//     disjoint and each range's output depends only on the immutable inputs,
//     so the result is byte-identical regardless of scheduling — the package
//     stays deterministic (detrand-clean: no clocks, no randomness).
//
// The pool is package-level and lazy: goroutines are spawned on demand, and
// the whole fleet is bounded by GOMAXPROCS at spawn time. Submission never
// blocks — if no worker is free the caller runs the range inline, which also
// keeps the pool deadlock-free without needing queue depth tuning.

import (
	"runtime"
	"sync"

	"corec/internal/gf256"
	"corec/internal/matrix"
)

// chunkBytes is the cache block the fused inner loops walk the stripe in.
// 32 KiB keeps a data chunk plus a parity chunk comfortably inside L1/L2
// while amortizing loop overhead; measured best among 8..256 KiB.
const chunkBytes = 32 << 10

// DefaultWorkers returns the default parallelism for the encode engine:
// GOMAXPROCS, the most goroutines that can make simultaneous progress.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// --- bounded worker pool ---

var (
	poolMu      sync.Mutex
	poolWorkers int
	poolTasks   = make(chan func())
)

func poolWorker() {
	for fn := range poolTasks {
		fn()
	}
}

// trySubmit hands fn to an idle pool worker, spawning one if the fleet is
// below GOMAXPROCS. It reports false — without blocking — when every worker
// is busy, in which case the caller runs fn itself.
func trySubmit(fn func()) bool {
	select {
	case poolTasks <- fn:
		return true
	default:
	}
	poolMu.Lock()
	if poolWorkers < runtime.GOMAXPROCS(0) {
		poolWorkers++
		go poolWorker()
	}
	poolMu.Unlock()
	// The fresh worker may not be receiving yet; fall back inline if not.
	select {
	case poolTasks <- fn:
		return true
	default:
		return false
	}
}

// run partitions [0, size) into up to parts chunk-aligned ranges and invokes
// fn on each, using pool workers for all but the last range, which the
// caller runs itself instead of idling. It returns when every range is done.
func run(size, parts int, fn func(lo, hi int)) {
	per := (size + parts - 1) / parts
	if rem := per % chunkBytes; rem != 0 {
		per += chunkBytes - rem
	}
	if per >= size {
		fn(0, size)
		return
	}
	var wg sync.WaitGroup
	lo := 0
	for ; lo+per < size; lo += per {
		lo, hi := lo, lo+per
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		if !trySubmit(task) {
			task()
		}
	}
	fn(lo, size)
	wg.Wait()
}

// mulRowChunk sets out to the sum of row[j] * srcs[j][lo:hi] over every j,
// fusing four sources per pass. The first group uses the "set" kernels, so
// out needs no pre-clear and its bytes are written (not read-modified) on
// the opening pass; the remaining groups accumulate. out must already be
// the [lo:hi] window of its shard.
func mulRowChunk(out []byte, row []byte, srcs [][]byte, lo, hi int) {
	var j int
	switch {
	case len(srcs) >= 4:
		gf256.MulSlice4(row[0], row[1], row[2], row[3],
			srcs[0][lo:hi], srcs[1][lo:hi], srcs[2][lo:hi], srcs[3][lo:hi], out)
		j = 4
	case len(srcs) >= 2:
		gf256.MulSlice2(row[0], row[1], srcs[0][lo:hi], srcs[1][lo:hi], out)
		j = 2
	default:
		gf256.MulSlice(row[0], srcs[0][lo:hi], out)
		j = 1
	}
	for ; j+4 <= len(srcs); j += 4 {
		gf256.MulAddSlice4(row[j], row[j+1], row[j+2], row[j+3],
			srcs[j][lo:hi], srcs[j+1][lo:hi], srcs[j+2][lo:hi], srcs[j+3][lo:hi], out)
	}
	if j+2 <= len(srcs) {
		gf256.MulAddSlice2(row[j], row[j+1], srcs[j][lo:hi], srcs[j+1][lo:hi], out)
		j += 2
	}
	if j < len(srcs) {
		gf256.MulAddSlice(row[j], srcs[j][lo:hi], out)
	}
}

// encodeRange computes every parity shard's [lo:hi] window from the data
// shards' same window, walking in cache-sized blocks so the data chunks are
// reused across all m generator rows while still hot.
func (c *Codec) encodeRange(shards [][]byte, lo, hi int) {
	data := shards[:c.k]
	for clo := lo; clo < hi; clo += chunkBytes {
		chi := min(clo+chunkBytes, hi)
		for p := 0; p < c.m; p++ {
			mulRowChunk(shards[c.k+p][clo:chi], c.gen.Row(c.k+p), data, clo, chi)
		}
	}
}

// reconstructRange recovers the [lo:hi] window of every missing shard.
// Within each cache block the missing data windows are recovered from the
// survivors first, then any missing parity windows are re-encoded from the
// (now complete for this block) data view — so a single pass needs no
// cross-range coordination.
func (c *Codec) reconstructRange(newBufs [][]byte, survivors, dataView [][]byte, dec *matrix.Matrix, missing []int, dataOnly bool, lo, hi int) {
	for clo := lo; clo < hi; clo += chunkBytes {
		chi := min(clo+chunkBytes, hi)
		for _, idx := range missing {
			if idx >= c.k {
				continue
			}
			mulRowChunk(newBufs[idx][clo:chi], dec.Row(idx), survivors, clo, chi)
		}
		if dataOnly {
			continue
		}
		for _, idx := range missing {
			if idx < c.k {
				continue
			}
			mulRowChunk(newBufs[idx][clo:chi], c.gen.Row(idx), dataView, clo, chi)
		}
	}
}
