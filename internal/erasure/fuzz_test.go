package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// Fuzz-style sweep of Codec.Reconstruct/ReconstructData in the transport
// fuzz_test.go spirit: seeded randomness, recover() guards, and exhaustive
// pattern enumeration where the space is small. The properties under test:
//
//  1. any erasure pattern of weight <= m round-trips byte-exact, and
//  2. any pattern of weight > m returns an error and never panics,
//
// both through the serial path and the parallel engine.

// enumeratePatterns calls fn with every subset of {0..n-1} of size exactly w.
func enumeratePatterns(n, w int, fn func(pattern []int)) {
	pattern := make([]int, w)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == w {
			fn(pattern)
			return
		}
		for i := start; i < n; i++ {
			pattern[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func mustNotPanic(t *testing.T, ctx string, fn func() error) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", ctx, r)
		}
	}()
	return fn()
}

// TestFuzzReconstructAllPatterns enumerates EVERY erasure pattern — all
// weights 1..m and, beyond the recoverable boundary, all weights m+1 — for a
// set of geometries including the paper-typical 8+3, under both the serial
// codec and the parallel+cached one.
func TestFuzzReconstructAllPatterns(t *testing.T) {
	geoms := [][2]int{{2, 1}, {3, 2}, {4, 2}, {8, 3}}
	for _, geom := range geoms {
		k, m := geom[0], geom[1]
		serial, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		par := serial.WithWorkers(3).WithDecodeCache(16)
		size := 257 // odd, forces unaligned kernel tails
		orig := makeStripe(t, serial, size, int64(1000*k+m))
		for _, codec := range []*Codec{serial, par} {
			for w := 1; w <= m; w++ {
				enumeratePatterns(k+m, w, func(pattern []int) {
					stripe := cloneStripe(orig)
					for _, e := range pattern {
						stripe[e] = nil
					}
					ctx := codecCtx(codec, k, m, pattern)
					if err := mustNotPanic(t, ctx+" Reconstruct", func() error { return codec.Reconstruct(stripe) }); err != nil {
						t.Fatalf("%s: %v", ctx, err)
					}
					for i := range orig {
						if !bytes.Equal(stripe[i], orig[i]) {
							t.Fatalf("%s: shard %d not byte-exact", ctx, i)
						}
					}
					// Degraded-read arm: data must round-trip; parity may
					// stay missing.
					stripe = cloneStripe(orig)
					for _, e := range pattern {
						stripe[e] = nil
					}
					if err := mustNotPanic(t, ctx+" ReconstructData", func() error { return codec.ReconstructData(stripe) }); err != nil {
						t.Fatalf("%s data: %v", ctx, err)
					}
					for i := 0; i < k; i++ {
						if !bytes.Equal(stripe[i], orig[i]) {
							t.Fatalf("%s: data shard %d not byte-exact", ctx, i)
						}
					}
				})
			}
			// One past the MDS bound: every weight-(m+1) pattern must fail
			// cleanly.
			enumeratePatterns(k+m, m+1, func(pattern []int) {
				stripe := cloneStripe(orig)
				for _, e := range pattern {
					stripe[e] = nil
				}
				ctx := codecCtx(codec, k, m, pattern)
				if err := mustNotPanic(t, ctx, func() error { return codec.Reconstruct(stripe) }); err == nil {
					t.Fatalf("%s: overweight pattern reconstructed", ctx)
				}
				if err := mustNotPanic(t, ctx, func() error { return codec.ReconstructData(stripe) }); err == nil {
					t.Fatalf("%s: overweight pattern data-reconstructed", ctx)
				}
			})
		}
	}
}

func codecCtx(c *Codec, k, m int, pattern []int) string {
	mode := "serial"
	if c.Workers() > 1 {
		mode = "parallel"
	}
	return mode + " RS(" + itoa(k) + "+" + itoa(m) + ") erased " + patternString(pattern)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func patternString(p []int) string {
	s := "{"
	for i, v := range p {
		if i > 0 {
			s += ","
		}
		s += itoa(v)
	}
	return s + "}"
}

// TestFuzzReconstructRandomOverweight drives random >m erasure patterns
// (weights m+1 .. k+m) with varied shard sizes: always an error, never a
// panic, and surviving shards untouched.
func TestFuzzReconstructRandomOverweight(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	serial, err := New(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	par := serial.WithWorkers(4).WithDecodeCache(4)
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(700)
		orig := makeStripe(t, serial, size, int64(trial))
		codec := serial
		if trial%2 == 1 {
			codec = par
		}
		lost := 3 + rng.Intn(6) // weight in [m+1, k+m]
		stripe := cloneStripe(orig)
		for _, e := range rng.Perm(8)[:lost] {
			stripe[e] = nil
		}
		before := cloneStripe(stripe)
		err := mustNotPanic(t, "overweight", func() error { return codec.Reconstruct(stripe) })
		if err == nil {
			t.Fatalf("trial %d: %d losses reconstructed", trial, lost)
		}
		for i := range stripe {
			if (stripe[i] == nil) != (before[i] == nil) || !bytes.Equal(stripe[i], before[i]) {
				t.Fatalf("trial %d: shard %d mutated by failed reconstruct", trial, i)
			}
		}
	}
}

// TestFuzzReconstructRandomRecoverable drives random <=m patterns across
// random sizes and both engines; every trial must round-trip byte-exact.
func TestFuzzReconstructRandomRecoverable(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	serial, err := NewWithConstruction(8, 3, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	par := serial.WithWorkers(5).WithDecodeCache(32)
	for trial := 0; trial < 120; trial++ {
		size := 1 + rng.Intn(2000)
		orig := makeStripe(t, serial, size, int64(5000+trial))
		codec := serial
		if trial%2 == 1 {
			codec = par
		}
		lost := 1 + rng.Intn(3)
		stripe := cloneStripe(orig)
		for _, e := range rng.Perm(11)[:lost] {
			stripe[e] = nil
		}
		if err := mustNotPanic(t, "recoverable", func() error { return codec.Reconstruct(stripe) }); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range orig {
			if !bytes.Equal(stripe[i], orig[i]) {
				t.Fatalf("trial %d: shard %d differs", trial, i)
			}
		}
	}
}
