package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func makeStripe(t testing.TB, c *Codec, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < c.DataShards() {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func cloneStripe(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = append([]byte(nil), s...)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(250, 10); err == nil {
		t.Error("k+m>256 accepted")
	}
	c, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 3 || c.ParityShards() != 1 || c.TotalShards() != 4 {
		t.Error("shard counts wrong")
	}
	if eff := c.StorageEfficiency(); eff < 0.74 || eff > 0.76 {
		t.Errorf("RS(4,3) storage efficiency = %v, want 0.75", eff)
	}
}

func TestEncodeVerify(t *testing.T) {
	c, _ := New(4, 2)
	shards := makeStripe(t, c, 1024, 1)
	if err := c.Verify(shards); err != nil {
		t.Fatalf("fresh stripe failed verification: %v", err)
	}
	shards[2][10] ^= 1
	if err := c.Verify(shards); !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupted stripe verified: %v", err)
	}
}

func TestReconstructAllLossPatterns(t *testing.T) {
	// RS(3+2): every subset of <=2 lost shards must reconstruct exactly.
	c, _ := New(3, 2)
	orig := makeStripe(t, c, 511, 2)
	n := c.TotalShards()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			shards := cloneStripe(orig)
			shards[i] = nil
			shards[j] = nil
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("lose (%d,%d): %v", i, j, err)
			}
			for s := range shards {
				if !bytes.Equal(shards[s], orig[s]) {
					t.Fatalf("lose (%d,%d): shard %d mismatch", i, j, s)
				}
			}
		}
	}
}

func TestReconstructTooManyLosses(t *testing.T) {
	c, _ := New(3, 2)
	shards := makeStripe(t, c, 64, 3)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooFewGood) {
		t.Fatalf("got %v, want ErrTooFewGood", err)
	}
}

func TestReconstructNoLoss(t *testing.T) {
	c, _ := New(3, 2)
	orig := makeStripe(t, c, 64, 4)
	shards := cloneStripe(orig)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatal("no-loss reconstruct modified shards")
		}
	}
}

func TestReconstructDataOnly(t *testing.T) {
	c, _ := New(4, 2)
	orig := makeStripe(t, c, 256, 5)
	shards := cloneStripe(orig)
	shards[1] = nil // data
	shards[5] = nil // parity
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], orig[1]) {
		t.Fatal("data shard not recovered")
	}
	if shards[5] != nil {
		t.Fatal("ReconstructData repaired parity; it must not")
	}
}

func TestReconstructSurvivorsUntouched(t *testing.T) {
	c, _ := New(4, 2)
	orig := makeStripe(t, c, 128, 6)
	shards := cloneStripe(orig)
	shards[0] = nil
	survivor := shards[3]
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if &survivor[0] != &shards[3][0] {
		t.Fatal("survivor shard was reallocated")
	}
}

func TestReconstructPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		k := 1 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		size := 1 + rng.Intn(300)
		orig := makeStripe(t, c, size, rng.Int63())
		shards := cloneStripe(orig)
		// Lose up to m random shards.
		losses := rng.Intn(m + 1)
		for _, idx := range rng.Perm(k + m)[:losses] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUpdateParityMatchesReencode(t *testing.T) {
	c, _ := New(3, 2)
	shards := makeStripe(t, c, 200, 8)
	oldData := append([]byte(nil), shards[1]...)
	newData := make([]byte, len(oldData))
	rand.New(rand.NewSource(9)).Read(newData)

	// Path 1: delta update.
	parity := [][]byte{
		append([]byte(nil), shards[3]...),
		append([]byte(nil), shards[4]...),
	}
	if err := c.UpdateParity(1, oldData, newData, parity); err != nil {
		t.Fatal(err)
	}

	// Path 2: full re-encode.
	shards[1] = newData
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parity[0], shards[3]) || !bytes.Equal(parity[1], shards[4]) {
		t.Fatal("delta parity update disagrees with full re-encode")
	}
}

func TestUpdateParityValidation(t *testing.T) {
	c, _ := New(3, 2)
	good := make([][]byte, 2)
	good[0] = make([]byte, 4)
	good[1] = make([]byte, 4)
	if err := c.UpdateParity(-1, make([]byte, 4), make([]byte, 4), good); err == nil {
		t.Error("negative index accepted")
	}
	if err := c.UpdateParity(3, make([]byte, 4), make([]byte, 4), good); err == nil {
		t.Error("index >= k accepted")
	}
	if err := c.UpdateParity(0, make([]byte, 4), make([]byte, 5), good); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := c.UpdateParity(0, make([]byte, 4), make([]byte, 4), good[:1]); err == nil {
		t.Error("short parity slice accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := New(3, 1)
	for _, size := range []int{1, 2, 3, 100, 301, 4096} {
		data := make([]byte, size)
		rand.New(rand.NewSource(int64(size))).Read(data)
		shards, shardSize := c.Split(data)
		if len(shards) != 4 {
			t.Fatalf("size %d: got %d shards", size, len(shards))
		}
		for _, s := range shards {
			if len(s) != shardSize {
				t.Fatalf("size %d: unequal shard sizes", size)
			}
		}
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		got, err := c.Join(shards, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

func TestSplitEmptyData(t *testing.T) {
	c, _ := New(3, 1)
	shards, shardSize := c.Split(nil)
	if shardSize != 1 {
		t.Fatalf("empty split shard size = %d, want 1", shardSize)
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMissingShard(t *testing.T) {
	c, _ := New(3, 1)
	shards, _ := c.Split([]byte("hello world, staging"))
	shards[1] = nil
	if _, err := c.Join(shards, 20); err == nil {
		t.Fatal("Join with missing data shard succeeded")
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := New(3, 2)
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Errorf("short stripe: %v", err)
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 5), make([]byte, 4), make([]byte, 4)}
	if err := c.Encode(bad); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged stripe: %v", err)
	}
	nilShard := [][]byte{make([]byte, 4), nil, make([]byte, 4), make([]byte, 4), make([]byte, 4)}
	if err := c.Encode(nilShard); !errors.Is(err, ErrShardSize) {
		t.Errorf("nil shard: %v", err)
	}
}

func TestDegradedReadThenRepairParity(t *testing.T) {
	// Lose a data and a parity shard; degraded-read recovers the data,
	// then a later full Reconstruct repairs the parity too.
	c, _ := New(4, 2)
	orig := makeStripe(t, c, 333, 11)
	shards := cloneStripe(orig)
	shards[2], shards[4] = nil, nil
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[2], orig[2]) {
		t.Fatal("degraded read returned wrong data")
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[4], orig[4]) {
		t.Fatal("parity repair failed after degraded read")
	}
}

func BenchmarkEncodeRS_3_1_1MiB(b *testing.B)  { benchEncode(b, 3, 1, 1<<20) }
func BenchmarkEncodeRS_6_2_1MiB(b *testing.B)  { benchEncode(b, 6, 2, 1<<20) }
func BenchmarkEncodeRS_10_4_1MiB(b *testing.B) { benchEncode(b, 10, 4, 1<<20) }

func benchEncode(b *testing.B, k, m, total int) {
	c, err := New(k, m)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, total)
	rand.New(rand.NewSource(1)).Read(data)
	shards, _ := c.Split(data)
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOneLoss(b *testing.B) {
	c, _ := New(3, 1)
	orig := makeStripe(b, c, 1<<18, 3)
	b.SetBytes(int64(3 * (1 << 18)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := cloneStripe(orig)
		shards[1] = nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateParityDelta(b *testing.B) {
	c, _ := New(3, 1)
	shards := makeStripe(b, c, 1<<18, 4)
	oldData := shards[0]
	newData := make([]byte, len(oldData))
	rand.New(rand.NewSource(5)).Read(newData)
	parity := [][]byte{shards[3]}
	b.SetBytes(int64(len(oldData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateParity(0, oldData, newData, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func TestVerifyDetectsEverySingleByteCorruption(t *testing.T) {
	// Property: flipping any single byte anywhere in the stripe makes
	// Verify fail — RS parity is sensitive to every position.
	c, _ := New(3, 2)
	shards := makeStripe(t, c, 64, 77)
	for s := range shards {
		for _, off := range []int{0, 13, 63} {
			shards[s][off] ^= 0x5A
			if err := c.Verify(shards); err == nil {
				t.Fatalf("corruption at shard %d offset %d undetected", s, off)
			}
			shards[s][off] ^= 0x5A
		}
	}
	if err := c.Verify(shards); err != nil {
		t.Fatalf("stripe damaged by the probe: %v", err)
	}
}

func TestReconstructThenVerifyProperty(t *testing.T) {
	// Reconstruction must always produce a stripe that verifies.
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		m := 1 + rng.Intn(3)
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		shards := makeStripe(t, c, 1+rng.Intn(200), rng.Int63())
		for _, idx := range rng.Perm(k + m)[:rng.Intn(m+1)] {
			shards[idx] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		if err := c.Verify(shards); err != nil {
			t.Fatalf("reconstructed stripe does not verify: %v", err)
		}
	}
}

func TestCauchyConstructionFullCycle(t *testing.T) {
	c, err := NewWithConstruction(4, 2, Cauchy)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeStripe(t, c, 333, 91)
	if err := c.Verify(orig); err != nil {
		t.Fatal(err)
	}
	shards := cloneStripe(orig)
	shards[0], shards[4] = nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("cauchy reconstruct shard %d mismatch", i)
		}
	}
}

func TestConstructionsProduceSameDataDifferentParity(t *testing.T) {
	// Both constructions are systematic over the same data; parity bytes
	// differ but both decode identically.
	data := []byte("the staging area never forgets")
	for _, con := range []Construction{Vandermonde, Cauchy} {
		c, err := NewWithConstruction(3, 2, con)
		if err != nil {
			t.Fatal(err)
		}
		shards, _ := c.Split(data)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		shards[1], shards[2] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("%v: %v", con, err)
		}
		got, err := c.Join(shards, len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%v: round trip failed", con)
		}
	}
}

func TestUnknownConstructionRejected(t *testing.T) {
	if _, err := NewWithConstruction(3, 1, Construction(9)); err == nil {
		t.Fatal("unknown construction accepted")
	}
	if Vandermonde.String() != "vandermonde" || Cauchy.String() != "cauchy" {
		t.Fatal("construction names wrong")
	}
}
