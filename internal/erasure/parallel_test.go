package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeParallelMatchesSerial is the engine's differential test: for
// several geometries, worker counts, and sizes (chunk-unaligned tails
// included), the parallel chunked-fused path must produce parity
// byte-identical to the serial row-major path.
func TestEncodeParallelMatchesSerial(t *testing.T) {
	sizes := []int{1, 17, chunkBytes - 1, chunkBytes, chunkBytes + 1, 3*chunkBytes + 311}
	for _, geom := range [][2]int{{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}} {
		k, m := geom[0], geom[1]
		for _, con := range []Construction{Vandermonde, Cauchy} {
			c, err := NewWithConstruction(k, m, con)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range sizes {
				want := makeStripe(t, c, size, int64(k*100+m*10+size%7))
				for _, workers := range []int{2, 3, 8} {
					got := cloneStripe(want)
					for p := k; p < k+m; p++ {
						clear(got[p]) // make sure Encode really writes parity
					}
					if err := c.WithWorkers(workers).Encode(got); err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if !bytes.Equal(want[i], got[i]) {
							t.Fatalf("%v RS(%d+%d) size=%d workers=%d: shard %d differs",
								con, k, m, size, workers, i)
						}
					}
				}
			}
		}
	}
}

// TestReconstructParallelMatchesSerial erases patterns of every weight up to
// m and checks the parallel reconstruct (with and without the decode-matrix
// cache) restores exactly what the serial path does.
func TestReconstructParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, geom := range [][2]int{{4, 2}, {8, 3}} {
		k, m := geom[0], geom[1]
		base, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		par := base.WithWorkers(4).WithDecodeCache(8)
		orig := makeStripe(t, base, 2*chunkBytes+97, int64(10*k+m))
		for trial := 0; trial < 40; trial++ {
			lost := 1 + rng.Intn(m)
			erased := rng.Perm(k + m)[:lost]
			for _, dataOnly := range []bool{false, true} {
				stripe := cloneStripe(orig)
				for _, e := range erased {
					stripe[e] = nil
				}
				var rerr error
				if dataOnly {
					rerr = par.ReconstructData(stripe)
				} else {
					rerr = par.Reconstruct(stripe)
				}
				if rerr != nil {
					t.Fatalf("RS(%d+%d) erased=%v dataOnly=%v: %v", k, m, erased, dataOnly, rerr)
				}
				for i := range orig {
					if stripe[i] == nil {
						if dataOnly && i >= k {
							continue // parity legitimately left missing
						}
						t.Fatalf("shard %d still nil (erased=%v dataOnly=%v)", i, erased, dataOnly)
					}
					if !bytes.Equal(stripe[i], orig[i]) {
						t.Fatalf("RS(%d+%d) erased=%v dataOnly=%v: shard %d differs", k, m, erased, dataOnly, i)
					}
				}
			}
		}
	}
}

// TestDecodeMatrixCache checks hit/miss accounting across repeated and
// distinct erasure patterns, and that WithWorkers copies share the cache.
func TestDecodeMatrixCache(t *testing.T) {
	base, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := base.WithDecodeCache(4)
	orig := makeStripe(t, base, 512, 5)
	degrade := func(cc *Codec, lost ...int) {
		stripe := cloneStripe(orig)
		for _, e := range lost {
			stripe[e] = nil
		}
		if err := cc.Reconstruct(stripe); err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			if !bytes.Equal(stripe[i], orig[i]) {
				t.Fatalf("shard %d differs after losing %v", i, lost)
			}
		}
	}
	degrade(c, 0)
	degrade(c, 0)
	degrade(c, 0, 1)
	degrade(c.WithWorkers(4), 0, 1) // same pattern through a workers copy
	st, ok := c.DecodeCacheStats()
	if !ok {
		t.Fatal("cache stats missing")
	}
	if st.Misses != 2 || st.Hits != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 misses, 2 hits, 2 entries", st)
	}
	if _, ok := base.DecodeCacheStats(); ok {
		t.Fatal("base codec should have no cache")
	}
}

// TestWithWorkersDefaults pins the knob semantics: base codecs are serial,
// non-positive worker counts resolve to DefaultWorkers, and copies do not
// mutate the receiver.
func TestWithWorkersDefaults(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 1 {
		t.Fatalf("base workers = %d, want 1", c.Workers())
	}
	if got := c.WithWorkers(0).Workers(); got != DefaultWorkers() {
		t.Fatalf("WithWorkers(0) = %d, want DefaultWorkers %d", got, DefaultWorkers())
	}
	if got := c.WithWorkers(6).Workers(); got != 6 {
		t.Fatalf("WithWorkers(6) = %d", got)
	}
	if c.Workers() != 1 {
		t.Fatal("WithWorkers mutated the receiver")
	}
	if got := c.WithDecodeCache(0); got.dec == nil {
		t.Fatal("WithDecodeCache(0) did not attach a default cache")
	}
}

// TestRunCoversRange checks the range partitioner visits every byte exactly
// once for awkward sizes and part counts.
func TestRunCoversRange(t *testing.T) {
	for _, size := range []int{1, chunkBytes, chunkBytes + 1, 5*chunkBytes + 3} {
		for _, parts := range []int{1, 2, 3, 16} {
			seen := make([]int32, size)
			run(size, parts, func(lo, hi int) {
				if lo < 0 || hi > size || lo >= hi {
					t.Errorf("bad range [%d,%d) for size=%d parts=%d", lo, hi, size, parts)
					return
				}
				for i := lo; i < hi; i++ {
					// ranges are disjoint, so unsynchronized writes are safe
					seen[i]++
				}
			})
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("size=%d parts=%d: byte %d visited %d times", size, parts, i, n)
				}
			}
		}
	}
}
