package erasure

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestChaosParallelEncodeAndCachedReconstruct is the erasure side of the
// -race chaos job: many goroutines concurrently encode fresh stripes through
// the shared worker pool while others run degraded reconstructions that all
// hit one shared decode-matrix cache. It validates results byte-exactly, so
// with -race it covers both memory-safety and determinism of the engine
// under contention. It stays small enough to run under -short.
func TestChaosParallelEncodeAndCachedReconstruct(t *testing.T) {
	base, err := New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec := base.WithWorkers(4).WithDecodeCache(8)
	const (
		writers  = 4
		readers  = 4
		rounds   = 25
		size     = chunkBytes + 513 // exercises multi-range + odd tail
		patterns = 6                // few distinct loss patterns -> cache contention
	)
	// One immutable reference stripe per loss pattern for the readers.
	refs := make([][][]byte, patterns)
	losses := make([][]int, patterns)
	prng := rand.New(rand.NewSource(97))
	for i := range refs {
		refs[i] = makeStripe(t, base, size, int64(200+i))
		losses[i] = prng.Perm(11)[:1+prng.Intn(3)]
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				stripe := make([][]byte, codec.TotalShards())
				for i := range stripe {
					stripe[i] = make([]byte, size)
					if i < codec.DataShards() {
						rng.Read(stripe[i])
					}
				}
				if err := codec.Encode(stripe); err != nil {
					errs <- err
					return
				}
				// Serial re-encode of the same data must agree byte-exactly.
				check := cloneStripe(stripe)
				for p := codec.DataShards(); p < codec.TotalShards(); p++ {
					clear(check[p])
				}
				if err := base.Encode(check); err != nil {
					errs <- err
					return
				}
				for i := range stripe {
					if !bytes.Equal(stripe[i], check[i]) {
						t.Errorf("writer: parallel encode diverged on shard %d", i)
						return
					}
				}
			}
		}(int64(300 + w))
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				pi := rng.Intn(patterns)
				stripe := cloneStripe(refs[pi])
				for _, e := range losses[pi] {
					stripe[e] = nil
				}
				if err := codec.ReconstructData(stripe); err != nil {
					errs <- err
					return
				}
				for d := 0; d < codec.DataShards(); d++ {
					if !bytes.Equal(stripe[d], refs[pi][d]) {
						t.Errorf("reader: data shard %d diverged for pattern %d", d, pi)
						return
					}
				}
			}
		}(int64(400 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, ok := codec.DecodeCacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("decode cache saw no hits under contention: %+v", st)
	}
}
