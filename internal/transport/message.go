// Package transport carries the staging protocol between clients and
// servers. Two interchangeable fabrics are provided: an in-process network
// (goroutine handlers plus a simnet link model, standing in for RDMA within
// one experiment process) and a TCP network (length-prefixed frames, for the
// standalone corec-server deployment).
//
// All protocol messages share the Message superset struct so one binary
// codec covers the whole protocol; unused fields cost nothing on the wire
// thanks to presence flags.
package transport

import (
	"context"
	"errors"
	"fmt"

	"corec/internal/geometry"
	"corec/internal/types"
)

// Kind enumerates protocol message types.
type Kind uint8

// Protocol message kinds. Request kinds are grouped by subsystem; OK and Err
// are the generic responses.
const (
	// Generic responses.
	MsgOK Kind = iota
	MsgErr

	// Client data plane.
	MsgPut      // store an object (Var, Box, Version, Data)
	MsgGet      // fetch an object by exact identity (Var, Box, Version)
	MsgGetBytes // response carrier: Data holds the payload
	MsgDelete   // evict an object: drop copies, shards and metadata (Key)

	// Replication plane.
	MsgReplicaPut  // store a replica copy
	MsgReplicaDrop // drop a replica after an encode transition

	// Erasure plane.
	MsgShardPut       // store one stripe shard (Stripe, ShardIndex, Data)
	MsgShardGet       // fetch one stripe shard
	MsgShardDrop      // drop one stripe shard (hybrid churn, promotions)
	MsgObjFetch       // fetch the full local copy of an object (helper encode, recovery)
	MsgEncodeDelegate // hand an object's encoding task to the helper server (Key)

	// Metadata plane.
	MsgMetaUpdate   // upsert an ObjectMeta record
	MsgMetaLookup   // fetch ObjectMeta by Key
	MsgMetaQuery    // fetch all ObjectMeta for Var intersecting Box
	MsgMetaDelete   // remove an ObjectMeta record
	MsgStripeUpdate // upsert a StripeInfo record
	MsgStripeLookup // fetch StripeInfo by Stripe id
	MsgDirDump      // dump a directory shard (recovery of lost metadata)

	// Coordination plane.
	MsgTokenAcquire // request the replication group's encoding token
	MsgTokenRelease // return the encoding token
	MsgLoadQuery    // ask a server for its current load level
	MsgPing         // liveness probe
	MsgRecover      // instruct a server to recover an object (Key)
	MsgStats        // ask a server for its status report (JSON in Data)

	// Anti-entropy plane (scrubber checksum exchange).
	MsgChecksum // ask a holder for the live checksum of its copy of Key
	MsgShardSum // ask a member for the live checksum of a stripe shard

	// Membership plane (SWIM-style gossip; payloads in Data carry the
	// membership package's own update codec, piggybacked on every probe).
	MsgPingReq // indirect probe: ask the receiver to ping server Num for us
	MsgGossip  // membership update exchange (Flag = pull a full snapshot)
	MsgHandoff // primary relinquish after migration moved Key elsewhere

	// Fleet control plane (multi-process deployments, driven by the
	// cluster harness and corec-cli).
	MsgStepEnd    // run end-of-step processing for time step Version on the receiver
	MsgRecoverAll // run full replacement-server recovery (Num = recovery.Mode)

	kindCount // sentinel; keep last
)

var kindNames = [...]string{
	"OK", "Err", "Put", "Get", "GetBytes", "Delete",
	"ReplicaPut", "ReplicaDrop",
	"ShardPut", "ShardGet", "ShardDrop", "ObjFetch", "EncodeDelegate",
	"MetaUpdate", "MetaLookup", "MetaQuery", "MetaDelete", "StripeUpdate", "StripeLookup", "DirDump",
	"TokenAcquire", "TokenRelease", "LoadQuery", "Ping", "Recover", "Stats",
	"Checksum", "ShardSum",
	"PingReq", "Gossip", "Handoff",
	"StepEnd", "RecoverAll",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is the protocol superset: each kind uses the subset of fields it
// needs and leaves the rest zero.
type Message struct {
	Kind    Kind
	From    types.ServerID
	Var     string
	Box     geometry.Box
	Version types.Version
	Data    []byte
	Key     string
	Stripe  types.StripeID
	// ShardIndex is the shard slot within Stripe for shard messages.
	ShardIndex int
	// K, M, ShardSize describe stripe geometry on MsgShardPut.
	K, M, ShardSize int
	Meta            *types.ObjectMeta
	Metas           []types.ObjectMeta
	StripeInfo      *types.StripeInfo
	Stripes         []types.StripeInfo
	// Flag is a general boolean (e.g. token granted, object found).
	Flag bool
	// Num is a general integer (e.g. load level).
	Num int64
	// Sum carries a content checksum (scrub plane responses).
	Sum uint64
	Err string
	// pooled is the pooled frame buffer Data aliases when the message was
	// decoded zero-copy (see AliasData) — not a wire field. It lets a caller
	// that has fully consumed the message hand the buffer back via Recycle;
	// messages that are never recycled just leave it to the GC.
	pooled []byte
}

// Ok returns the generic success response.
func Ok() *Message { return &Message{Kind: MsgOK} }

// Errf returns an error response with a formatted message.
func Errf(format string, args ...any) *Message {
	return &Message{Kind: MsgErr, Err: fmt.Sprintf(format, args...)}
}

// AsError converts an MsgErr response into a Go error; any other kind maps
// to nil. Responses flagged retryable by the peer (Flag set on MsgErr, e.g.
// a corrupt request frame the server detected) wrap ErrRemoteRetryable so
// the retry layer resends them.
func (m *Message) AsError() error {
	if m != nil && m.Kind == MsgErr {
		if m.Flag {
			return fmt.Errorf("%w: %s", ErrRemoteRetryable, m.Err)
		}
		return errors.New(m.Err)
	}
	return nil
}

// WireSize estimates the serialized size in bytes, used by the link model
// to charge bandwidth. It intentionally matches the codec's framing closely
// (exactness is not required; the dominant term is len(Data)).
func (m *Message) WireSize() int {
	s := 72 + len(m.Var) + len(m.Key) + len(m.Data) + len(m.Err)
	s += 16 * m.Box.Dims()
	if m.Meta != nil {
		s += metaWireSize(m.Meta)
	}
	for i := range m.Metas {
		s += metaWireSize(&m.Metas[i])
	}
	if m.StripeInfo != nil {
		s += 32 + 24*len(m.StripeInfo.Members)
	}
	for i := range m.Stripes {
		s += 32 + 24*len(m.Stripes[i].Members)
	}
	return s
}

func metaWireSize(meta *types.ObjectMeta) int {
	return 72 + len(meta.ID.Var) + 16*meta.ID.Box.Dims() + 8*len(meta.Replicas)
}

// Handler processes one request and returns the response. Handlers must be
// safe for concurrent use.
type Handler func(ctx context.Context, req *Message) *Message

// Typed transport errors. The retry layer (see IsRetryable) distinguishes
// these transient fabric failures from terminal application errors.
var (
	// ErrUnreachable is returned by Send when the destination has no
	// registered handler (the server failed or never existed).
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrDropped is returned when the fabric lost the request or response
	// (injected by FaultyNetwork; a real fabric surfaces a timeout instead).
	ErrDropped = errors.New("transport: message dropped")
	// ErrPartitioned is returned when a network partition blocks the link
	// between sender and destination.
	ErrPartitioned = errors.New("transport: link partitioned")
	// ErrCorruptFrame is returned when a wire frame fails its CRC32
	// integrity check. The frame boundary is intact, so the message can
	// simply be resent.
	ErrCorruptFrame = errors.New("transport: corrupt frame (CRC32 mismatch)")
	// ErrRemoteRetryable wraps MsgErr responses the peer flagged as
	// transient (e.g. it received a corrupt request frame).
	ErrRemoteRetryable = errors.New("transport: retryable remote error")
	// ErrConnBroken is returned for requests in flight on a multiplexed
	// connection that died (EOF, reset, write failure). The request may or
	// may not have reached the server, but every protocol request is
	// idempotent, so resending — which the mux path does once itself, and
	// the retry layer does beyond that — is always safe.
	ErrConnBroken = errors.New("transport: mux connection broken")
)

// Network is the fabric abstraction: register a server's handler, send
// request/response pairs.
type Network interface {
	// Register installs the handler for a server. Re-registering replaces
	// the handler (used when a replacement server takes over an ID).
	Register(id types.ServerID, h Handler)
	// Unregister removes a server from the fabric; subsequent Sends fail
	// with ErrUnreachable. Used by the failure injector.
	Unregister(id types.ServerID)
	// Send delivers req to the destination server and returns its response.
	Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error)
}
