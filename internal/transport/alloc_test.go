package transport

import (
	"context"
	"io"
	"testing"

	"corec/internal/types"
)

// TestWriteFrameIDAllocsBounded guards the hot send path against allocation
// regressions: with the buffer pool warm, scatter-gather framing of a 1 MiB
// put must stay within a handful of small allocations per frame — the
// payload itself is never copied, and the scratch buffer comes from the
// pool. The seed path (WriteFrame) allocates and fills a full frame-sized
// buffer per message; this bound is what makes the mux arm's throughput win
// durable.
func TestWriteFrameIDAllocsBounded(t *testing.T) {
	m := &Message{Kind: MsgPut, Var: "alloc", Key: "k", Version: 3, Data: make([]byte, 1<<20)}
	for i := 0; i < 4; i++ {
		if err := writeFrameID(io.Discard, m, 1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := writeFrameID(io.Discard, m, 1); err != nil {
			t.Fatal(err)
		}
	})
	// Expected steady state: the net.Buffers header, the pool's interface
	// boxing on put, and loop-variant escapes — all O(bytes of metadata),
	// none O(payload).
	const maxAllocs = 8
	if allocs > maxAllocs {
		t.Fatalf("writeFrameID: %.0f allocs/op for a 1 MiB frame, want <= %d", allocs, maxAllocs)
	}
}

// BenchmarkSend compares allocs/op and ns/op of a 1 MiB put over real TCP
// loopback between the seed one-request-per-connection discipline and the
// multiplexed zero-copy path. Run with -benchmem; the mux arm should show
// both fewer bytes/op (no frame-sized copies) and fewer allocs/op.
func BenchmarkSend(b *testing.B) {
	payload := make([]byte, 1<<20)
	for name, mux := range map[string]bool{"baseline": false, "mux": true} {
		b.Run(name, func(b *testing.B) {
			n := NewTCPNetwork("127.0.0.1")
			if mux {
				n.ConfigureMux(1, DefaultMaxInFlight)
			}
			n.Register(0, func(_ context.Context, req *Message) *Message {
				Recycle(req) // the bench handler does not retain the payload
				return Ok()
			})
			defer n.Close()
			req := &Message{Kind: MsgPut, Var: "bench", Data: payload}
			ctx := context.Background()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := n.Send(ctx, types.ServerID(-1), 0, req)
				if err != nil {
					b.Fatal(err)
				}
				Recycle(resp)
			}
		})
	}
}
