package transport

import (
	"sync"
	"sync/atomic"
)

// Size-class recycling for frame buffers. Both hot paths of the TCP fabric
// run through here: the send side borrows a scratch buffer for the frame
// header plus wire metadata (the Data payload itself is written straight
// from the caller's slice), and the receive side reads whole frames into a
// pooled buffer before decoding.
//
// Ownership rules (the contract that makes pooling safe):
//
//   - getBuf hands out a buffer the caller owns exclusively.
//   - putBuf returns it; the caller must hold no references afterwards.
//   - readFramePooled recycles its buffer itself UNLESS the decoded
//     message aliases it (Decode with AliasData, for large Data). In that
//     case ownership transfers to the Message and the buffer is simply
//     dropped to the GC when the message is released — an aliased buffer
//     must never be recycled, because the server stores req.Data by
//     reference and a recycled backing array would corrupt staged data.
//
// Buffers larger than the biggest class are allocated directly and never
// pooled (counted as misses). Classes were sized to the protocol's traffic
// mix: small control/metadata frames, 64 KiB transfer pieces, and payloads
// up to the default 4 MiB object cap, each with headroom for wire metadata.

// The size classes. Each class gets its own pool typed as a pointer to a
// fixed-size array (*[classN]byte) rather than *[]byte: a pointer stores
// directly in an interface word, so getBuf and putBuf are allocation-free
// on the hot path, where boxing a slice header would cost one small heap
// allocation per call — per frame, on both send and receive.
const (
	class0 = 4 << 10
	class1 = 64<<10 + 512
	class2 = 1<<20 + 1024
	class3 = 4<<20 + 1024
)

var (
	bufPool0 sync.Pool // holds *[class0]byte
	bufPool1 sync.Pool // holds *[class1]byte
	bufPool2 sync.Pool // holds *[class2]byte
	bufPool3 sync.Pool // holds *[class3]byte
)

var (
	bufPoolHits   atomic.Int64
	bufPoolMisses atomic.Int64
)

// getBuf returns a buffer of length n from the smallest class that fits,
// or a direct allocation when n exceeds every class. The contents are
// arbitrary (callers overwrite the full length).
func getBuf(n int) []byte {
	var v any
	switch {
	case n <= class0:
		v = bufPool0.Get()
		if v == nil {
			bufPoolMisses.Add(1)
			return make([]byte, n, class0)
		}
		bufPoolHits.Add(1)
		return v.(*[class0]byte)[:n]
	case n <= class1:
		v = bufPool1.Get()
		if v == nil {
			bufPoolMisses.Add(1)
			return make([]byte, n, class1)
		}
		bufPoolHits.Add(1)
		return v.(*[class1]byte)[:n]
	case n <= class2:
		v = bufPool2.Get()
		if v == nil {
			bufPoolMisses.Add(1)
			return make([]byte, n, class2)
		}
		bufPoolHits.Add(1)
		return v.(*[class2]byte)[:n]
	case n <= class3:
		v = bufPool3.Get()
		if v == nil {
			bufPoolMisses.Add(1)
			return make([]byte, n, class3)
		}
		bufPoolHits.Add(1)
		return v.(*[class3]byte)[:n]
	}
	bufPoolMisses.Add(1)
	return make([]byte, n)
}

// putBuf recycles a buffer previously returned by getBuf. Buffers whose
// capacity matches no class (oversize allocations, or append-grown slices
// that migrated to a new backing array) are silently dropped to the GC.
// The slice-to-array-pointer conversions are safe because capacity is
// measured from the slice's first element: a cap of classN guarantees
// classN addressable bytes behind the pointer.
func putBuf(b []byte) {
	switch cap(b) {
	case class0:
		bufPool0.Put((*[class0]byte)(b[:class0]))
	case class1:
		bufPool1.Put((*[class1]byte)(b[:class1]))
	case class2:
		bufPool2.Put((*[class2]byte)(b[:class2]))
	case class3:
		bufPool3.Put((*[class3]byte)(b[:class3]))
	}
}

// BufferPoolStats reports cumulative frame-buffer pool outcomes: hits are
// recycled buffers, misses are fresh allocations (first use, oversize
// frames, and buffers lost to alias-decoded messages). The counters are
// process-global because the pools are.
func BufferPoolStats() (hits, misses int64) {
	return bufPoolHits.Load(), bufPoolMisses.Load()
}

// Recycle hands a message's pooled frame buffer back for reuse. Call it
// only when the message — and anything aliasing its Data (sub-slices kept
// by the caller, responses stored by reference) — is no longer referenced:
// after Recycle the buffer will back future frames and the old contents are
// overwritten. Messages that never held a pooled buffer, and repeated calls
// on the same message, are no-ops, so a caller that consumes every response
// the same way can recycle unconditionally. This is the completion half of
// the zero-copy read path: without it an alias-decoded buffer simply falls
// to the GC (safe, but every large response costs a fresh allocation).
func Recycle(m *Message) {
	if m == nil || m.pooled == nil {
		return
	}
	b := m.pooled
	m.pooled = nil
	m.Data = nil
	putBuf(b)
}
