package transport

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnRandomBytes feeds the wire decoder random garbage
// and bit-flipped valid frames: it must return errors, never panic — the
// property that makes the TCP fabric safe against corrupt or hostile
// peers.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	// Pure random buffers.
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(512))
		rng.Read(buf)
		Decode(buf) //nolint:errcheck // only absence of panics matters
	}
	// Single-byte corruptions of a real frame: much deeper decoder
	// penetration than random noise.
	valid := Encode(sampleMessage(), nil)
	for i := 0; i < len(valid); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			buf := append([]byte(nil), valid...)
			buf[i] ^= flip
			Decode(buf) //nolint:errcheck
		}
	}
	// Truncations at every length.
	for i := 0; i <= len(valid); i++ {
		Decode(valid[:i]) //nolint:errcheck
	}
}

// TestDecodeCorruptionDetectedOrHarmless checks that every single-byte
// corruption of a frame either fails to decode or yields a message whose
// re-encoding is internally consistent (no aliasing surprises).
func TestDecodeCorruptionRoundTripConsistent(t *testing.T) {
	valid := Encode(sampleMessage(), nil)
	for i := 0; i < len(valid); i++ {
		buf := append([]byte(nil), valid...)
		buf[i] ^= 0x40
		m, err := Decode(buf)
		if err != nil {
			continue // detected: good
		}
		// Accepted: the decoded message must survive its own round trip.
		again, err := Decode(Encode(m, nil))
		if err != nil {
			t.Fatalf("corruption at %d: re-decode failed: %v", i, err)
		}
		if again.Kind != m.Kind || again.Var != m.Var || len(again.Data) != len(m.Data) {
			t.Fatalf("corruption at %d: round trip not stable", i)
		}
	}
}
