package transport

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnRandomBytes feeds the wire decoder random garbage
// and bit-flipped valid frames: it must return errors, never panic — the
// property that makes the TCP fabric safe against corrupt or hostile
// peers.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked: %v", r)
		}
	}()
	// Pure random buffers.
	for i := 0; i < 5000; i++ {
		buf := make([]byte, rng.Intn(512))
		rng.Read(buf)
		Decode(buf) //nolint:errcheck // only absence of panics matters
	}
	// Single-byte corruptions of a real frame: much deeper decoder
	// penetration than random noise.
	valid := Encode(sampleMessage(), nil)
	for i := 0; i < len(valid); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			buf := append([]byte(nil), valid...)
			buf[i] ^= flip
			Decode(buf) //nolint:errcheck
		}
	}
	// Truncations at every length.
	for i := 0; i <= len(valid); i++ {
		Decode(valid[:i]) //nolint:errcheck
	}
}

// TestFrameCorruptionAlwaysDetected flips every bit position of a framed
// message and demands the CRC32 layer catch it: payload corruption must
// surface as the typed, retryable ErrCorruptFrame; header corruption must
// fail too (length mismatch or checksum error), and nothing may panic.
// This is the property the fault injector and the TCP fabric both lean on.
func TestFrameCorruptionAlwaysDetected(t *testing.T) {
	frame := EncodeFrame(sampleMessage())
	for i := frameHeaderSize; i < len(frame); i++ {
		for _, flip := range []byte{0x01, 0x10, 0x80} {
			buf := append([]byte(nil), frame...)
			buf[i] ^= flip
			_, err := DecodeFrame(buf)
			if !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("payload flip 0x%02x at byte %d: err = %v, want ErrCorruptFrame", flip, i, err)
			}
		}
	}
	for i := 0; i < frameHeaderSize; i++ {
		for _, flip := range []byte{0x01, 0x10, 0x80} {
			buf := append([]byte(nil), frame...)
			buf[i] ^= flip
			if _, err := DecodeFrame(buf); err == nil {
				t.Fatalf("header flip 0x%02x at byte %d accepted", flip, i)
			}
		}
	}
	// The pristine frame still decodes (the loop above didn't test a
	// broken encoder against a broken checker).
	if _, err := DecodeFrame(frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

// TestFrameStreamStaysAligned corrupts one frame in a two-frame stream and
// checks the reader reports the corruption but recovers the next frame: the
// length prefix bounds the damage, which is why a TCP connection survives a
// corrupt frame instead of being torn down.
func TestFrameStreamStaysAligned(t *testing.T) {
	first := EncodeFrame(sampleMessage())
	first[frameHeaderSize] ^= 0xFF // corrupt the first payload byte
	var stream bytes.Buffer
	stream.Write(first)
	if err := WriteFrame(&stream, sampleMessage()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&stream); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt frame read: err = %v, want ErrCorruptFrame", err)
	}
	m, err := ReadFrame(&stream)
	if err != nil {
		t.Fatalf("stream lost alignment after corrupt frame: %v", err)
	}
	if m.Kind != sampleMessage().Kind || m.Var != sampleMessage().Var {
		t.Fatal("frame after corruption decoded wrong")
	}
}

// TestDecodeCorruptionDetectedOrHarmless checks that every single-byte
// corruption of a frame either fails to decode or yields a message whose
// re-encoding is internally consistent (no aliasing surprises).
func TestDecodeCorruptionRoundTripConsistent(t *testing.T) {
	valid := Encode(sampleMessage(), nil)
	for i := 0; i < len(valid); i++ {
		buf := append([]byte(nil), valid...)
		buf[i] ^= 0x40
		m, err := Decode(buf)
		if err != nil {
			continue // detected: good
		}
		// Accepted: the decoded message must survive its own round trip.
		again, err := Decode(Encode(m, nil))
		if err != nil {
			t.Fatalf("corruption at %d: re-decode failed: %v", i, err)
		}
		if again.Kind != m.Kind || again.Var != m.Var || len(again.Data) != len(m.Data) {
			t.Fatalf("corruption at %d: round trip not stable", i)
		}
	}
}
