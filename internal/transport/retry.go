package transport

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"corec/internal/types"
)

// RetryPolicy governs client-side resend of staging RPCs. Every protocol
// request is idempotent — puts overwrite the same key/version, reads and
// directory operations are pure — so resending on a transient fabric
// failure is always safe. Backoff is capped exponential with jitter so a
// thundering herd of retries cannot keep a recovering link saturated.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 are treated as 1, i.e. retries disabled.
	MaxAttempts int
	// PerAttemptTimeout bounds each individual attempt, so a dropped
	// message turns into a timely retry rather than waiting out the whole
	// caller deadline. Zero inherits the caller's context only.
	PerAttemptTimeout time.Duration
	// BaseBackoff is the delay before the first retry; it doubles each
	// further retry. Zero retries immediately.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means uncapped.
	MaxBackoff time.Duration
	// JitterFrac randomizes each backoff within ±(JitterFrac/2)·delay,
	// de-synchronizing concurrent retriers. Typical value 0.5.
	JitterFrac float64
	// Budget caps the total time spent across all attempts (backoffs
	// included). Zero means no budget; the context still applies.
	Budget time.Duration
}

// DefaultRetryPolicy returns the policy the staging client uses unless
// configured otherwise: four attempts, sub-millisecond initial backoff
// (matched to the in-process fabric's microsecond latencies), 50ms cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 500 * time.Microsecond,
		MaxBackoff:  50 * time.Millisecond,
		JitterFrac:  0.5,
	}
}

// Enabled reports whether the policy performs any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// IsRetryable classifies an error as a transient fabric failure worth
// resending, as opposed to a terminal application error. Unreachable
// destinations count as retryable: under transient partitions and server
// restarts the next attempt may well succeed, and the write path's
// failover handles the persistent case.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrUnreachable),
		errors.Is(err, ErrDropped),
		errors.Is(err, ErrPartitioned),
		errors.Is(err, ErrCorruptFrame),
		errors.Is(err, ErrRemoteRetryable),
		errors.Is(err, ErrConnBroken),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return false
}

// jitterRng de-synchronizes backoff delays across goroutines; its seed does
// not need to be reproducible (fault injection has its own seeded stream).
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitter(d time.Duration, frac float64) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	span := float64(d) * frac
	jitterMu.Lock()
	off := jitterRng.Float64()*span - span/2
	jitterMu.Unlock()
	out := time.Duration(float64(d) + off)
	if out < 0 {
		out = 0
	}
	return out
}

// backoffFor returns the delay before retry number retry (0-based).
func (p RetryPolicy) backoffFor(retry int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return jitter(d, p.JitterFrac)
}

// Send delivers the request under the retry policy. It returns the
// response, the number of attempts made, and the final error. Responses
// carrying a retryable remote error (see Message.AsError) are retried like
// transport failures; other application errors are returned to the caller
// untouched inside the response.
func (p RetryPolicy) Send(ctx context.Context, n Network, from, to types.ServerID, req *Message) (*Message, int, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	start := time.Now()
	var lastErr error
	for a := 0; a < attempts; a++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		resp, err := n.Send(actx, from, to, req)
		cancel()
		if err == nil {
			if rerr := resp.AsError(); rerr != nil && IsRetryable(rerr) {
				err = rerr
			} else {
				return resp, a + 1, nil
			}
		}
		lastErr = err
		if !IsRetryable(err) || ctx.Err() != nil {
			return nil, a + 1, lastErr
		}
		if a == attempts-1 {
			break
		}
		if p.Budget > 0 && time.Since(start) >= p.Budget {
			return nil, a + 1, lastErr
		}
		if d := p.backoffFor(a); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, a + 1, lastErr
			case <-t.C:
			}
		}
	}
	return nil, attempts, lastErr
}
