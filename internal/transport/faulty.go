package transport

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"corec/internal/failure"
	"corec/internal/types"
)

// FaultyNetwork decorates any Network with seeded, deterministic network
// faults: per-link message drops, duplicate delivery, payload corruption,
// extra latency/jitter, and bidirectional partitions between server sets.
// It is the message-level half of the failure model — the node-level half
// (fail-stop kills) lives in Cluster.Kill — and exists so the resilience
// claims can be exercised under the messy failures a real fabric produces,
// not just clean server deaths.
//
// Corruption is injected below the codec: the message is framed exactly as
// the TCP fabric would put it on the wire, one byte is flipped, and the
// frame is re-verified — so the CRC32 integrity check is exercised for
// real, and detection surfaces as the retryable ErrCorruptFrame.
type FaultyNetwork struct {
	inner Network

	mu   sync.Mutex
	rng  *rand.Rand
	plan failure.FaultPlan
	step types.Version
	// manual holds partitions installed at runtime (transient partitions a
	// test opens and heals around a scenario), keyed by handle.
	manual map[int]failure.Partition
	nextID int

	drops        atomic.Int64
	dups         atomic.Int64
	corrupts     atomic.Int64
	respCorrupts atomic.Int64
	connBreaks   atomic.Int64
	partitioned  atomic.Int64
	delayed      atomic.Int64
}

// connBreaker is the optional fabric hook the injector uses to sever live
// client connections (TCPNetwork implements it; the in-process fabric has
// no connections to break).
type connBreaker interface {
	BreakConns(to types.ServerID) int
}

var _ Network = (*FaultyNetwork)(nil)

// FaultStats reports cumulative injected-fault counters.
type FaultStats struct {
	// Drops is the number of messages lost in flight.
	Drops int64
	// Dups is the number of messages delivered twice.
	Dups int64
	// Corrupts is the number of request frames corrupted (and caught by CRC32).
	Corrupts int64
	// RespCorrupts is the number of response frames corrupted after the
	// request was delivered and processed.
	RespCorrupts int64
	// ConnBreaks is the number of connection-severing faults injected
	// (each may break several live connections).
	ConnBreaks int64
	// Partitioned is the number of sends refused by an active partition.
	Partitioned int64
	// Delayed is the number of messages charged extra latency or jitter.
	Delayed int64
}

// NewFaultyNetwork wraps inner with the fault plan. A nil plan injects
// nothing until partitions are installed manually.
func NewFaultyNetwork(inner Network, plan *failure.FaultPlan) *FaultyNetwork {
	f := &FaultyNetwork{
		inner:  inner,
		manual: make(map[int]failure.Partition),
	}
	if plan != nil {
		f.plan = *plan
		f.plan.Links = append([]failure.LinkFault(nil), plan.Links...)
		f.plan.Partitions = append([]failure.Partition(nil), plan.Partitions...)
	}
	f.rng = rand.New(rand.NewSource(f.plan.Seed))
	return f
}

// Inner returns the wrapped fabric (used by the cluster to reach
// fabric-specific APIs like TCPNetwork.Addr).
func (f *FaultyNetwork) Inner() Network { return f.inner }

// Register implements Network.
func (f *FaultyNetwork) Register(id types.ServerID, h Handler) { f.inner.Register(id, h) }

// Unregister implements Network.
func (f *FaultyNetwork) Unregister(id types.ServerID) { f.inner.Unregister(id) }

// Registered forwards liveness checks to the inner fabric when supported.
func (f *FaultyNetwork) Registered(id types.ServerID) bool {
	if r, ok := f.inner.(interface{ Registered(types.ServerID) bool }); ok {
		return r.Registered(id)
	}
	return false
}

// AdvanceStep moves the plan's current workflow time step, activating and
// expiring step-windowed fault rules and partitions.
func (f *FaultyNetwork) AdvanceStep(ts types.Version) {
	f.mu.Lock()
	if ts > f.step {
		f.step = ts
	}
	f.mu.Unlock()
}

// Step returns the plan's current workflow time step.
func (f *FaultyNetwork) Step() types.Version {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.step
}

// Partition installs a manual bidirectional partition between the sets and
// returns a heal function that removes it. Manual partitions ignore step
// windows — they are active from install to heal.
func (f *FaultyNetwork) Partition(a, b []types.ServerID) (heal func()) {
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.manual[id] = failure.Partition{A: a, B: b}
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		delete(f.manual, id)
		f.mu.Unlock()
	}
}

// Stats returns the cumulative injected-fault counters.
func (f *FaultyNetwork) Stats() FaultStats {
	return FaultStats{
		Drops:        f.drops.Load(),
		Dups:         f.dups.Load(),
		Corrupts:     f.corrupts.Load(),
		RespCorrupts: f.respCorrupts.Load(),
		ConnBreaks:   f.connBreaks.Load(),
		Partitioned:  f.partitioned.Load(),
		Delayed:      f.delayed.Load(),
	}
}

// linkDecision is the set of faults drawn for one message.
type linkDecision struct {
	blocked     bool
	drop        bool
	dup         bool
	corrupt     bool
	respCorrupt bool
	connBreak   bool
	delay       time.Duration
}

func (f *FaultyNetwork) decide(from, to types.ServerID) linkDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	ts := f.step
	var d linkDecision
	for i := range f.plan.Partitions {
		p := &f.plan.Partitions[i]
		if p.ActiveAt(ts) && p.Blocks(from, to) {
			d.blocked = true
			return d
		}
	}
	for _, p := range f.manual {
		if p.Blocks(from, to) {
			d.blocked = true
			return d
		}
	}
	for i := range f.plan.Links {
		r := &f.plan.Links[i]
		if !r.ActiveAt(ts) || !r.Matches(from, to) {
			continue
		}
		d.delay += r.ExtraLatency
		if r.Jitter > 0 {
			d.delay += time.Duration(f.rng.Int63n(int64(r.Jitter)))
		}
		if r.DropProb > 0 && f.rng.Float64() < r.DropProb {
			d.drop = true
		}
		if r.DupProb > 0 && f.rng.Float64() < r.DupProb {
			d.dup = true
		}
		if r.CorruptProb > 0 && f.rng.Float64() < r.CorruptProb {
			d.corrupt = true
		}
		if r.RespCorruptProb > 0 && f.rng.Float64() < r.RespCorruptProb {
			d.respCorrupt = true
		}
		if r.ConnBreakProb > 0 && f.rng.Float64() < r.ConnBreakProb {
			d.connBreak = true
		}
	}
	return d
}

// Send implements Network, applying the drawn faults in fabric order:
// partition check, transit delay, corruption, loss, duplication, delivery.
func (f *FaultyNetwork) Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	d := f.decide(from, to)
	if d.blocked {
		f.partitioned.Add(1)
		return nil, ErrPartitioned
	}
	if d.delay > 0 {
		f.delayed.Add(1)
		t := time.NewTimer(d.delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	if d.corrupt {
		f.corrupts.Add(1)
		return nil, f.corruptFrame(req)
	}
	if d.drop {
		f.drops.Add(1)
		return nil, ErrDropped
	}
	if d.dup {
		f.dups.Add(1)
		// Deliver the duplicate inline, before the original, with its
		// response discarded: duplicates on a request/response fabric come
		// from retransmits, which stay ordered with respect to the
		// sender's later traffic. Replaying out of band would inject
		// reorderings a TCP stream cannot produce (e.g. a stale
		// metadata update clobbering a newer same-version record).
		cp := *req
		_, _ = f.inner.Send(ctx, from, to, &cp) // injected duplicate: its outcome must stay invisible
	}
	if d.connBreak {
		// Sever every live client connection to the destination before this
		// send, modeling mid-stream connection loss: requests pipelined on a
		// shared multiplexed connection fail together with ErrConnBroken and
		// exercise the mux redial salvage. The in-process fabric has no
		// connections, so the draw is a no-op there.
		if br, ok := f.inner.(connBreaker); ok {
			f.connBreaks.Add(1)
			br.BreakConns(to)
		}
	}
	resp, err := f.inner.Send(ctx, from, to, req)
	if err == nil && d.respCorrupt {
		// The request was delivered and processed; corrupt the reply on the
		// way back. On a multiplexed connection this is the per-request
		// failure path: only this request fails, the stream realigns.
		f.respCorrupts.Add(1)
		return nil, f.corruptFrame(resp)
	}
	return resp, err
}

// corruptFrame frames the message exactly as the TCP wire codec would,
// flips one payload byte, and runs the frame back through the CRC32
// verification — returning the resulting typed error. This keeps the
// injector honest: if the integrity check ever regressed, corruption would
// silently deliver garbage and tests would catch it.
func (f *FaultyNetwork) corruptFrame(req *Message) error {
	buf := EncodeFrame(req)
	f.mu.Lock()
	// Flip within the payload (past the header) so the frame boundary
	// stays intact, mirroring the aligned-stream corruption TCP survives.
	i := frameHeaderSize + f.rng.Intn(len(buf)-frameHeaderSize)
	bit := byte(1) << uint(f.rng.Intn(8))
	f.mu.Unlock()
	buf[i] ^= bit
	if _, err := DecodeFrame(buf); err != nil {
		return err
	}
	// Unreachable with a sound CRC32; fall back to the typed error so the
	// caller still sees the corruption.
	return ErrCorruptFrame
}
