package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"corec/internal/types"
)

// Request multiplexing: instead of dedicating one pooled connection to
// every in-flight request, a small fixed set of connections per peer
// carries many concurrent requests, correlated by the frame header's
// request ID. Each connection runs one writer goroutine (scatter-gather
// frame writes off a channel) and one demultiplexing reader goroutine
// (pooled frame reads, responses routed to per-request channels), with a
// bounded in-flight window applying backpressure.
//
// Failure semantics mirror the baseline path:
//
//   - A corrupt response frame fails only its own request with the
//     retryable ErrCorruptFrame; the length prefix bounded the damage, so
//     the stream realigns and every other pipelined request proceeds.
//   - A dead connection (EOF, reset, write error) fails all its pending
//     requests with the retryable ErrConnBroken and the next request
//     transparently dials a replacement — and, like the baseline's
//     stale-pool redial, the failing request itself is salvaged by one
//     immediate retry on the fresh connection (counted in MuxRedials).

// DefaultMaxInFlight is the per-connection pipelining window used when
// multiplexing is enabled without an explicit bound.
const DefaultMaxInFlight = 32

// muxResult carries one demultiplexed response (or its failure).
type muxResult struct {
	m   *Message
	err error
}

// muxWrite is one frame handed to the writer goroutine.
type muxWrite struct {
	reqID uint64
	m     *Message
}

// muxSet is the per-peer connection set, used round-robin.
type muxSet struct {
	conns []*muxConn
	next  uint64
}

// muxConn is one multiplexed connection: a writer goroutine, a demux
// reader goroutine, and the pending-request table between them.
type muxConn struct {
	owner   *TCPNetwork
	conn    net.Conn
	writeCh chan muxWrite
	// sem is the in-flight window: holding a slot admits one request to
	// the pipeline.
	sem  chan struct{}
	done chan struct{}
	once sync.Once

	mu      sync.Mutex
	pending map[uint64]chan muxResult
	broken  bool
	cause   error
}

func newMuxConn(owner *TCPNetwork, conn net.Conn, window int) *muxConn {
	mc := &muxConn{
		owner:   owner,
		conn:    conn,
		writeCh: make(chan muxWrite, window),
		sem:     make(chan struct{}, window),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan muxResult),
	}
	go mc.writeLoop()
	go mc.readLoop()
	return mc
}

func (mc *muxConn) writeLoop() {
	for {
		select {
		case w := <-mc.writeCh:
			if err := writeFrameID(mc.conn, w.m, w.reqID); err != nil {
				// A partial frame may be on the wire; the stream cannot be
				// trusted, so the whole connection fails (the pending
				// request, this one included, all get ErrConnBroken).
				mc.fail(err)
				return
			}
		case <-mc.done:
			return
		}
	}
}

func (mc *muxConn) readLoop() {
	hdr := make([]byte, frameHeaderSize)
	for {
		reqID, m, err := readFramePooled(mc.conn, hdr)
		switch {
		case err == nil:
			mc.deliver(reqID, muxResult{m: m})
		case errors.Is(err, ErrCorruptFrame):
			// The frame boundary held, so the stream is realigned: fail
			// only the request the corrupt frame answered and keep every
			// other pipelined request in flight. The frame CRC covers the
			// request ID, so a corrupt ID cannot misroute the failure to a
			// healthy request's frame.
			mc.deliver(reqID, muxResult{err: err})
		default:
			mc.fail(err)
			return
		}
	}
}

// deliver routes one response to its waiting request. The pending entry is
// removed under the lock; the send happens outside it on a buffered
// channel, so delivery never blocks on (or deadlocks with) the requester.
func (mc *muxConn) deliver(reqID uint64, r muxResult) {
	mc.mu.Lock()
	ch := mc.pending[reqID]
	delete(mc.pending, reqID)
	mc.mu.Unlock()
	if ch != nil {
		ch <- r
	}
	// A nil channel means the requester gave up (context cancellation) or
	// the frame answered nothing we sent; either way the response is
	// dropped and its buffer left to the GC.
}

// forget abandons a pending request (context cancellation). Any late
// response is discarded by deliver.
func (mc *muxConn) forget(reqID uint64) {
	mc.mu.Lock()
	delete(mc.pending, reqID)
	mc.mu.Unlock()
}

// fail marks the connection broken, closes it, and fails every pending
// request with the retryable ErrConnBroken.
func (mc *muxConn) fail(cause error) {
	mc.mu.Lock()
	if !mc.broken {
		mc.broken = true
		mc.cause = cause
	}
	pend := mc.pending
	mc.pending = make(map[uint64]chan muxResult)
	mc.mu.Unlock()
	mc.once.Do(func() { close(mc.done) })
	_ = mc.conn.Close() // the failure cause is what gets reported
	err := fmt.Errorf("%w: %v", ErrConnBroken, cause)
	for _, ch := range pend {
		ch <- muxResult{err: err}
	}
}

func (mc *muxConn) isBroken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.broken
}

func (mc *muxConn) brokenErr() error {
	mc.mu.Lock()
	cause := mc.cause
	mc.mu.Unlock()
	if cause == nil {
		return ErrConnBroken
	}
	return fmt.Errorf("%w: %v", ErrConnBroken, cause)
}

// release returns an in-flight window slot.
func (mc *muxConn) release() {
	<-mc.sem
	mc.owner.inflight.Add(-1)
}

// roundTrip runs one request over the multiplexed connection: acquire a
// window slot, register the request ID, enqueue the frame for the writer,
// await the demultiplexed response.
func (mc *muxConn) roundTrip(ctx context.Context, req *Message) (*Message, error) {
	select {
	case mc.sem <- struct{}{}:
	case <-mc.done:
		return nil, mc.brokenErr()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	mc.owner.inflight.Add(1)
	defer mc.release()

	reqID := mc.owner.reqSeq.Add(1)
	ch := make(chan muxResult, 1)
	mc.mu.Lock()
	if mc.broken {
		mc.mu.Unlock()
		return nil, mc.brokenErr()
	}
	mc.pending[reqID] = ch
	mc.mu.Unlock()

	select {
	case mc.writeCh <- muxWrite{reqID: reqID, m: req}:
	case <-mc.done:
		mc.forget(reqID)
		return nil, mc.brokenErr()
	case <-ctx.Done():
		mc.forget(reqID)
		return nil, ctx.Err()
	}

	select {
	case r := <-ch:
		return r.m, r.err
	case <-ctx.Done():
		mc.forget(reqID)
		return nil, ctx.Err()
	}
}

// getMuxConn returns the destination's next multiplexed connection in
// round-robin order, dialing fresh or replacement connections lazily.
func (n *TCPNetwork) getMuxConn(to types.ServerID) (*muxConn, error) {
	n.muxMu.Lock()
	set := n.muxes[to]
	if set == nil {
		set = &muxSet{conns: make([]*muxConn, n.muxConns)}
		n.muxes[to] = set
	}
	i := int(set.next % uint64(len(set.conns)))
	set.next++
	if mc := set.conns[i]; mc != nil && !mc.isBroken() {
		n.muxMu.Unlock()
		return mc, nil
	}
	// Dialing under muxMu keeps slot management race-free; dials are rare
	// (first use of a peer and replacement of broken connections).
	c, err := n.dial(to)
	if err != nil {
		n.muxMu.Unlock()
		return nil, err
	}
	mc := newMuxConn(n, c, n.maxInFlight)
	set.conns[i] = mc
	n.muxMu.Unlock()
	return mc, nil
}

// sendMux is Send's multiplexed path. A request whose connection broke is
// retried once on a fresh connection — the mux analogue of the baseline's
// stale-pool redial: the shared connection may simply predate a server
// restart, and that salvage must not surface as a request failure.
func (n *TCPNetwork) sendMux(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	req.From = from
	mc, err := n.getMuxConn(to)
	if err != nil {
		return nil, err
	}
	resp, err := mc.roundTrip(ctx, req)
	if err == nil || !errors.Is(err, ErrConnBroken) || ctx.Err() != nil {
		return resp, err
	}
	n.muxRedials.Add(1)
	mc, derr := n.getMuxConn(to)
	if derr != nil {
		return nil, derr
	}
	return mc.roundTrip(ctx, req)
}

// dropMux tears down the destination's multiplexed connections (address
// change, unregistration). In-flight requests fail with the retryable
// ErrConnBroken.
func (n *TCPNetwork) dropMux(id types.ServerID) {
	n.muxMu.Lock()
	set := n.muxes[id]
	delete(n.muxes, id)
	n.muxMu.Unlock()
	if set == nil {
		return
	}
	for _, mc := range set.conns {
		if mc != nil {
			mc.fail(errors.New("connection dropped (peer reconfigured)"))
		}
	}
}

// dropAllMux tears down every multiplexed connection (fabric Close).
func (n *TCPNetwork) dropAllMux() {
	n.muxMu.Lock()
	sets := make([]*muxSet, 0, len(n.muxes))
	for _, set := range n.muxes {
		sets = append(sets, set)
	}
	n.muxes = make(map[types.ServerID]*muxSet)
	n.muxMu.Unlock()
	for _, set := range sets {
		for _, mc := range set.conns {
			if mc != nil {
				mc.fail(errors.New("connection dropped (fabric closed)"))
			}
		}
	}
}

// ActiveMuxConns reports the number of live multiplexed connections across
// all peers (the gauge surfaced by FabricStatus).
func (n *TCPNetwork) ActiveMuxConns() int {
	n.muxMu.Lock()
	defer n.muxMu.Unlock()
	live := 0
	for _, set := range n.muxes {
		for _, mc := range set.conns {
			if mc != nil && !mc.isBroken() {
				live++
			}
		}
	}
	return live
}

// BreakConns severs every live client connection to the destination —
// idle pooled baseline connections and multiplexed connections alike —
// without touching the destination server. The seeded fault injector uses
// it to model mid-stream connection loss; requests in mux flight fail with
// the retryable ErrConnBroken and are salvaged by the redial path.
func (n *TCPNetwork) BreakConns(to types.ServerID) int {
	n.mu.Lock()
	idle := n.pool[to]
	delete(n.pool, to)
	n.mu.Unlock()
	broken := 0
	for _, c := range idle {
		_ = c.Close() // idle pooled conn; the next user redials
		broken++
	}
	n.muxMu.Lock()
	var mcs []*muxConn
	if set := n.muxes[to]; set != nil {
		for i, mc := range set.conns {
			if mc != nil {
				mcs = append(mcs, mc)
				set.conns[i] = nil
			}
		}
	}
	n.muxMu.Unlock()
	for _, mc := range mcs {
		mc.fail(errors.New("connection broken by fault injection"))
		broken++
	}
	return broken
}
