package transport

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"corec/internal/simnet"
	"corec/internal/types"
)

// InProc is the in-process fabric: every server is a registered handler and
// Send invokes the destination handler directly on the caller's goroutine,
// after charging the link-model delay for the request and response sizes.
// Because callers are real goroutines, contention at a hot server shows up
// as genuine queueing, which the encoding workflow's load balancing reacts
// to — the same dynamic the paper exploits on Titan.
type InProc struct {
	mu       sync.RWMutex
	handlers map[types.ServerID]Handler
	link     simnet.LinkModel

	msgs  atomic.Int64
	bytes atomic.Int64
}

var _ Network = (*InProc)(nil)

// NewInProc builds an in-process fabric with the given link model.
func NewInProc(link simnet.LinkModel) *InProc {
	return &InProc{handlers: make(map[types.ServerID]Handler), link: link}
}

// Register implements Network.
func (n *InProc) Register(id types.ServerID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// Unregister implements Network.
func (n *InProc) Unregister(id types.ServerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, id)
}

// Registered reports whether a handler is installed for id (i.e. the server
// is alive from the fabric's point of view).
func (n *InProc) Registered(id types.ServerID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.handlers[id]
	return ok
}

// Send implements Network.
func (n *InProc) Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	n.mu.RLock()
	h, ok := n.handlers[to]
	n.mu.RUnlock()
	if !ok {
		return nil, ErrUnreachable
	}
	req.From = from
	reqSize := req.WireSize()
	if err := n.delay(ctx, reqSize); err != nil {
		return nil, err
	}
	resp := h(ctx, req)
	if resp == nil {
		resp = Ok()
	}
	// WireSize walks every field (metas, stripes, box dims); compute it once
	// for both the bandwidth charge and the byte counter.
	respSize := resp.WireSize()
	if err := n.delay(ctx, respSize); err != nil {
		return nil, err
	}
	n.msgs.Add(2)
	n.bytes.Add(int64(reqSize + respSize))
	return resp, nil
}

func (n *InProc) delay(ctx context.Context, size int) error {
	if n.link.IsFree() {
		return nil
	}
	d := n.link.Delay(size)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns cumulative message and byte counters (both directions).
func (n *InProc) Stats() (msgs, bytes int64) {
	return n.msgs.Load(), n.bytes.Load()
}
