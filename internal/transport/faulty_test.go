package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"corec/internal/failure"
	"corec/internal/types"
)

// countingNet is a minimal inner fabric: it counts deliveries and answers OK.
type countingNet struct{ delivered atomic.Int64 }

func (n *countingNet) Register(types.ServerID, Handler) {}
func (n *countingNet) Unregister(types.ServerID)        {}
func (n *countingNet) Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	n.delivered.Add(1)
	return Ok(), nil
}

func TestFaultyNetworkDeterministicAcrossRuns(t *testing.T) {
	plan := &failure.FaultPlan{
		Seed: 99,
		Links: []failure.LinkFault{{
			DropProb:    0.3,
			DupProb:     0.2,
			CorruptProb: 0.1,
		}},
	}
	run := func() (FaultStats, int64) {
		inner := &countingNet{}
		f := NewFaultyNetwork(inner, plan)
		for i := 0; i < 500; i++ {
			f.Send(context.Background(), types.ServerID(i%4), types.ServerID((i+1)%4), &Message{Kind: MsgPing}) //nolint:errcheck
		}
		return f.Stats(), inner.delivered.Load()
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, d1, s2, d2)
	}
	if s1.Drops == 0 || s1.Dups == 0 || s1.Corrupts == 0 {
		t.Fatalf("plan injected nothing: %+v", s1)
	}
}

func TestFaultyNetworkDropAndCorruptSurfaceTypedErrors(t *testing.T) {
	f := NewFaultyNetwork(&countingNet{}, &failure.FaultPlan{
		Links: []failure.LinkFault{{DropProb: 1}},
	})
	if _, err := f.Send(context.Background(), 0, 1, &Message{Kind: MsgPing}); !errors.Is(err, ErrDropped) {
		t.Fatalf("drop err = %v, want ErrDropped", err)
	}
	if !IsRetryable(ErrDropped) {
		t.Fatal("ErrDropped must be retryable")
	}

	f = NewFaultyNetwork(&countingNet{}, &failure.FaultPlan{
		Links: []failure.LinkFault{{CorruptProb: 1}},
	})
	_, err := f.Send(context.Background(), 0, 1, sampleMessage())
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("corrupt err = %v, want ErrCorruptFrame", err)
	}
	if st := f.Stats(); st.Corrupts != 1 {
		t.Fatalf("stats = %+v, want one corrupt", st)
	}
}

func TestFaultyNetworkDuplicateDelivers(t *testing.T) {
	inner := &countingNet{}
	f := NewFaultyNetwork(inner, &failure.FaultPlan{
		Links: []failure.LinkFault{{DupProb: 1}},
	})
	if _, err := f.Send(context.Background(), 0, 1, &Message{Kind: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if n := inner.delivered.Load(); n != 2 {
		t.Fatalf("delivered %d times, want 2 (original + duplicate)", n)
	}
}

func TestFaultyNetworkStepWindows(t *testing.T) {
	f := NewFaultyNetwork(&countingNet{}, &failure.FaultPlan{
		Partitions: []failure.Partition{{
			A: []types.ServerID{0}, B: []types.ServerID{1},
			FromStep: 2, ToStep: 3,
		}},
	})
	send := func() error {
		_, err := f.Send(context.Background(), 0, 1, &Message{Kind: MsgPing})
		return err
	}
	if err := send(); err != nil {
		t.Fatalf("partition active before its window: %v", err)
	}
	f.AdvanceStep(2)
	if err := send(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("in-window err = %v, want ErrPartitioned", err)
	}
	// Traffic not crossing the cut is unaffected, clients included.
	if _, err := f.Send(context.Background(), -1, 1, &Message{Kind: MsgPing}); err != nil {
		t.Fatalf("client traffic blocked by server partition: %v", err)
	}
	f.AdvanceStep(4)
	if err := send(); err != nil {
		t.Fatalf("partition active past its window: %v", err)
	}
	if st := f.Stats(); st.Partitioned != 1 {
		t.Fatalf("stats = %+v, want one partitioned send", st)
	}
}

func TestFaultyNetworkManualPartitionHeals(t *testing.T) {
	f := NewFaultyNetwork(&countingNet{}, nil)
	heal := f.Partition([]types.ServerID{0}, []types.ServerID{1, 2})
	if _, err := f.Send(context.Background(), 2, 0, &Message{Kind: MsgPing}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("manual partition not enforced: %v", err)
	}
	heal()
	if _, err := f.Send(context.Background(), 2, 0, &Message{Kind: MsgPing}); err != nil {
		t.Fatalf("partition survived heal: %v", err)
	}
}

func TestFaultyNetworkDelayHonorsContext(t *testing.T) {
	f := NewFaultyNetwork(&countingNet{}, &failure.FaultPlan{
		Links: []failure.LinkFault{{ExtraLatency: time.Minute}},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Send(ctx, 0, 1, &Message{Kind: MsgPing})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed send err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}
