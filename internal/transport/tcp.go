package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"corec/internal/types"
)

// The TCP fabric serializes Messages with the wire codec and frames them
// with a 16-byte header: a little-endian payload length, the frame's CRC32
// (IEEE), and a 64-bit request ID that correlates responses with requests
// on multiplexed connections (the baseline one-request-per-connection path
// sends ID 0 and ignores it on responses). The CRC covers the request ID
// and the payload, so every header corruption is detected — a flipped
// length fails the length/stream check, a flipped CRC or ID fails the
// checksum — and turns into the typed, retryable ErrCorruptFrame instead
// of a decode panic or silent garbage. Because the length prefix still
// bounds the frame, the stream stays aligned and the connection survives a
// corrupt frame.

const maxFrame = 1 << 30

// frameHeaderSize is the frame header: uint32 payload length + uint32
// CRC32(request ID || payload) + uint64 request ID.
const frameHeaderSize = 16

// frameCRC chains the frame checksum over the request ID and the logical
// payload segments without concatenating them — the scatter-gather send
// path hands the header+metadata and Data slices separately. id is the
// request ID exactly as framed: the 8 little-endian bytes at header offset
// 8 (taking the already-encoded bytes instead of the uint64 keeps a
// scratch buffer, and its per-call heap escape, off the hot path).
func frameCRC(id []byte, segments ...[]byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, id)
	for _, s := range segments {
		crc = crc32.Update(crc, crc32.IEEETable, s)
	}
	return crc
}

// EncodeFrame serializes one message into a self-contained frame:
// length-prefixed, CRC32-protected wire bytes as written to a TCP stream
// (request ID 0, the baseline discipline).
func EncodeFrame(m *Message) []byte { return encodeFrameID(m, 0) }

func encodeFrameID(m *Message, reqID uint64) []byte {
	buf := Encode(m, make([]byte, frameHeaderSize, frameHeaderSize+m.WireSize()))
	payload := buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], reqID)
	binary.LittleEndian.PutUint32(buf[4:8], frameCRC(buf[8:16], payload))
	return buf
}

// DecodeFrame parses one complete frame produced by EncodeFrame, verifying
// its CRC32 before decoding. A checksum mismatch yields ErrCorruptFrame.
func DecodeFrame(buf []byte) (*Message, error) {
	if len(buf) < frameHeaderSize {
		return nil, fmt.Errorf("transport: frame of %d bytes shorter than header", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if int(n)+frameHeaderSize != len(buf) {
		return nil, fmt.Errorf("transport: frame length %d does not match %d buffered bytes", n, len(buf)-frameHeaderSize)
	}
	payload := buf[frameHeaderSize:]
	if got, want := frameCRC(buf[8:16], payload), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorruptFrame, got, want)
	}
	return Decode(payload)
}

// WriteFrame writes one length-prefixed, CRC32-protected message to w with
// the baseline (seed) discipline: the whole frame, payload included, is
// copied into one freshly allocated buffer. The mux path uses
// writeFrameID's zero-copy scatter-gather instead; this copy-heavy variant
// is retained as the measurable comparison baseline.
func WriteFrame(w io.Writer, m *Message) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// writeFrameID writes one frame with scatter-gather I/O: the header and
// wire metadata are encoded into a pooled scratch buffer, the Data payload
// is written straight from the caller's slice (never copied), and the CRC
// is chained across the logical payload segments. On a *net.TCPConn the
// three segments go out as a single writev.
func writeFrameID(w io.Writer, m *Message, reqID uint64) error {
	// WireSize is a close estimate, not a bound (its fixed term undercounts
	// the field prefixes by a few dozen bytes); the slack keeps Encode from
	// outgrowing the pooled scratch and paying a realloc every frame.
	scratchLen := frameHeaderSize + m.WireSize() - len(m.Data) + 64
	scratch := getBuf(scratchLen)
	defer putBuf(scratch)
	var mark int
	buf := Encode(m, scratch[:frameHeaderSize], SplitData(&mark))
	payloadLen := len(buf) - frameHeaderSize + len(m.Data)
	if payloadLen > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", payloadLen)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payloadLen))
	binary.LittleEndian.PutUint64(buf[8:16], reqID)
	binary.LittleEndian.PutUint32(buf[4:8], frameCRC(buf[8:16], buf[frameHeaderSize:mark], m.Data, buf[mark:]))
	bufs := net.Buffers{buf[:mark], m.Data, buf[mark:]}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame reads one frame from r, verifying its integrity. Corruption
// surfaces as ErrCorruptFrame with the stream still aligned on the next
// frame boundary (the length prefix was honoured). Like WriteFrame this is
// the baseline allocate-per-frame variant; the mux and pipelined-server
// paths use readFramePooled.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if got, want := frameCRC(hdr[8:16], buf), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorruptFrame, got, want)
	}
	return Decode(buf)
}

// readFramePooled reads one frame into a pooled buffer and decodes it with
// Data aliasing. The pooled buffer is recycled here unless the decoded
// message aliases it, in which case ownership transfers to the Message
// (see buffers.go for the full ownership rules).
//
// The request ID is returned even when the frame fails its integrity
// check, so a demultiplexing reader can fail just that request and keep
// the stream: the length prefix was honoured, the stream is realigned, and
// the CRC covered the ID itself, so a corrupt ID cannot silently misroute
// a healthy frame.
// hdr is caller-provided scratch of at least frameHeaderSize bytes; the
// per-connection read loops allocate it once, because a local array here
// would escape into the io.Reader call and cost an allocation per frame.
func readFramePooled(r io.Reader, hdr []byte) (reqID uint64, m *Message, err error) {
	hdr = hdr[:frameHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	reqID = binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxFrame {
		return reqID, nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := getBuf(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(buf)
		return reqID, nil, err
	}
	if got, want := frameCRC(hdr[8:16], buf), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		putBuf(buf)
		return reqID, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorruptFrame, got, want)
	}
	m, err = Decode(buf, AliasData())
	if err != nil {
		putBuf(buf)
		return reqID, nil, err
	}
	if !m.Aliased() {
		putBuf(buf)
	}
	return reqID, m, nil
}

// maxConnHandlers bounds concurrently executing handlers per pipelined
// connection, backpressuring a client that outruns the server.
const maxConnHandlers = 256

// TCPServer serves the staging protocol on a TCP listener, dispatching each
// request to a Handler. One reader goroutine per connection. In pipelined
// mode requests are decoded from pooled frame buffers and dispatched to
// concurrent handler goroutines, with responses echoing the request ID so
// a multiplexing client can interleave many requests on one stream; in
// baseline mode requests are served sequentially with the seed's
// allocate-and-copy framing, preserving the original one-request-per-
// connection stack as the benchmark comparison point.
type TCPServer struct {
	handler   Handler
	listener  net.Listener
	pipelined bool

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer listens on addr (e.g. "127.0.0.1:0") and serves requests
// with h until Close, in pipelined mode.
func NewTCPServer(addr string, h Handler) (*TCPServer, error) {
	return newTCPServerMode(addr, h, true)
}

// NewTCPServerBaseline is NewTCPServer with the seed's sequential
// one-request-at-a-time connection loop — the retained comparison baseline
// (a TCPNetwork with multiplexing disabled registers its servers this way
// so the baseline measures the original stack end to end).
func NewTCPServerBaseline(addr string, h Handler) (*TCPServer, error) {
	return newTCPServerMode(addr, h, false)
}

func newTCPServerMode(addr string, h Handler, pipelined bool) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{handler: h, listener: ln, pipelined: pipelined, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // raced with Close; connection was never served
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // nothing to flush on a request/response stream
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if !s.pipelined {
		s.serveConnBaseline(conn)
		return
	}
	// Pipelined loop: frames are read into pooled buffers, each request
	// runs in its own handler goroutine, and responses are serialized onto
	// the stream under wmu carrying the request's ID. A corrupt request
	// frame fails only that request — the length prefix held, so the
	// stream is realigned and the retryable error is routed back under the
	// recovered ID.
	var wmu sync.Mutex
	sem := make(chan struct{}, maxConnHandlers)
	hdr := make([]byte, frameHeaderSize)
	for {
		reqID, req, err := readFramePooled(conn, hdr)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				resp := Errf("%v", err)
				resp.Flag = true // retryable: the client should resend
				wmu.Lock()
				werr := writeFrameID(conn, resp, reqID)
				wmu.Unlock()
				if werr == nil {
					continue
				}
			}
			return
		}
		sem <- struct{}{}
		s.wg.Add(1)
		go func(reqID uint64, req *Message) {
			defer s.wg.Done()
			defer func() { <-sem }()
			resp := s.handler(context.Background(), req)
			if resp == nil {
				resp = Ok()
			}
			wmu.Lock()
			err := writeFrameID(conn, resp, reqID)
			wmu.Unlock()
			if err != nil {
				// The stream may hold a partial frame; tearing the
				// connection down is the only safe realignment. The reader
				// loop unblocks on the close.
				_ = conn.Close() // write failed; the conn is already broken
			}
		}(reqID, req)
	}
}

// serveConnBaseline is the seed's sequential connection loop: one frame
// read (allocate + copy), one handler call, one response write per
// iteration, request IDs fixed at 0.
func (s *TCPServer) serveConnBaseline(conn net.Conn) {
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				// The frame boundary held (length prefix was valid), so the
				// stream is still aligned: report the corruption as a
				// retryable error and keep the connection.
				resp := Errf("%v", err)
				resp.Flag = true // retryable: the client should resend
				if WriteFrame(conn, resp) == nil {
					continue
				}
			}
			return
		}
		resp := s.handler(context.Background(), req)
		if resp == nil {
			resp = Ok()
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // serveConn exits on the closed conn; listener error is the one reported
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPNetwork implements Network over TCP: a directory maps server IDs to
// addresses, and a small per-destination connection pool amortizes dials.
// Register/Unregister manage locally hosted servers (each gets its own
// TCPServer).
type TCPNetwork struct {
	mu      sync.Mutex
	addrs   map[types.ServerID]string
	servers map[types.ServerID]*TCPServer
	pool    map[types.ServerID][]net.Conn
	// listenAddr is the host/interface used for locally hosted servers.
	listenAddr string
	// portBase, when > 0, pins server id's listener to port portBase+id
	// instead of an ephemeral port, so the processes of a multi-host fleet
	// can compute each other's addresses without a coordination round.
	portBase int
	// redials counts requests salvaged by redialing after a pooled
	// connection turned out to be stale (server restarted under its ID).
	redials atomic.Int64

	// Multiplexing state (see mux.go). muxConns == 0 keeps the baseline
	// one-request-per-connection discipline; > 0 routes Send over muxConns
	// shared pipelined connections per peer, each with a bounded in-flight
	// window of maxInFlight requests.
	muxConns    int
	maxInFlight int
	muxMu       sync.Mutex
	muxes       map[types.ServerID]*muxSet
	// muxRedials counts requests salvaged by replacing a broken mux
	// connection (the mux analogue of redials); inflight is the current
	// number of requests in mux flight, reqSeq issues correlation IDs.
	muxRedials atomic.Int64
	inflight   atomic.Int64
	reqSeq     atomic.Uint64
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork creates a TCP fabric whose locally registered servers bind
// to listenHost (e.g. "127.0.0.1"), with multiplexing disabled (the
// baseline one-request-per-connection discipline).
func NewTCPNetwork(listenHost string) *TCPNetwork {
	return &TCPNetwork{
		addrs:      make(map[types.ServerID]string),
		servers:    make(map[types.ServerID]*TCPServer),
		pool:       make(map[types.ServerID][]net.Conn),
		muxes:      make(map[types.ServerID]*muxSet),
		listenAddr: listenHost,
	}
}

// ConfigureMux enables request multiplexing: conns pipelined connections
// per peer, each with a bounded window of maxInFlight concurrent requests
// (0 resolves to DefaultMaxInFlight). conns <= 0 keeps the baseline
// discipline. Configure before the first Send; servers registered
// afterwards serve pipelined connections.
func (n *TCPNetwork) ConfigureMux(conns, maxInFlight int) {
	if conns < 0 {
		conns = 0
	}
	if maxInFlight <= 0 {
		maxInFlight = DefaultMaxInFlight
	}
	n.muxMu.Lock()
	n.muxConns = conns
	n.maxInFlight = maxInFlight
	n.muxMu.Unlock()
}

// muxEnabled reports whether Send routes over multiplexed connections.
func (n *TCPNetwork) muxEnabled() bool {
	n.muxMu.Lock()
	defer n.muxMu.Unlock()
	return n.muxConns > 0
}

// MuxConfig returns the multiplexing knobs in effect: connections per peer
// (0 = baseline discipline) and the per-connection in-flight window.
func (n *TCPNetwork) MuxConfig() (conns, maxInFlight int) {
	n.muxMu.Lock()
	defer n.muxMu.Unlock()
	return n.muxConns, n.maxInFlight
}

// SetPortBase pins locally registered servers to deterministic ports:
// server id listens on listenAddr:base+id. base <= 0 restores ephemeral
// ports. Configure before the first Register.
func (n *TCPNetwork) SetPortBase(base int) {
	n.mu.Lock()
	n.portBase = base
	n.mu.Unlock()
}

// listenPort returns the port string server id should bind.
func (n *TCPNetwork) listenPort(id types.ServerID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.portBase > 0 {
		return strconv.Itoa(n.portBase + int(id))
	}
	return "0"
}

// Register implements Network: it spins up a TCP server for the handler on
// an ephemeral port (or portBase+id when a port base is set) and records
// its address. The server mode follows the fabric's discipline: pipelined
// when multiplexing is enabled, the seed's sequential loop otherwise (so a
// baseline fabric measures the original stack end to end).
func (n *TCPNetwork) Register(id types.ServerID, h Handler) {
	srv, err := newTCPServerMode(net.JoinHostPort(n.listenAddr, n.listenPort(id)), h, n.muxEnabled())
	if err != nil {
		// Registration has no error path in the interface; fail loudly.
		panic(fmt.Sprintf("transport: cannot listen for server %d: %v", id, err))
	}
	n.mu.Lock()
	if old, ok := n.servers[id]; ok {
		_ = old.Close() // replaced server; its listener error has no consumer
	}
	n.servers[id] = srv
	n.addrs[id] = srv.Addr()
	n.dropPoolLocked(id)
	n.mu.Unlock()
	n.dropMux(id)
}

// Addr returns the known address for a server, if any.
func (n *TCPNetwork) Addr(id types.ServerID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	return addr, ok
}

// Registered reports whether the fabric knows an address for the server.
func (n *TCPNetwork) Registered(id types.ServerID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.addrs[id]
	return ok
}

// AddRemote records the address of a server hosted elsewhere.
func (n *TCPNetwork) AddRemote(id types.ServerID, addr string) {
	n.mu.Lock()
	n.addrs[id] = addr
	n.dropPoolLocked(id)
	n.mu.Unlock()
	n.dropMux(id)
}

// Unregister implements Network.
func (n *TCPNetwork) Unregister(id types.ServerID) {
	n.mu.Lock()
	srv := n.servers[id]
	delete(n.servers, id)
	delete(n.addrs, id)
	n.dropPoolLocked(id)
	n.mu.Unlock()
	n.dropMux(id)
	if srv != nil {
		_ = srv.Close() // unregistering; the server is gone either way
	}
}

func (n *TCPNetwork) dropPoolLocked(id types.ServerID) {
	for _, c := range n.pool[id] {
		_ = c.Close() // idle pooled conns; nothing in flight
	}
	delete(n.pool, id)
}

// getConn returns a connection to the destination, preferring the pool.
// pooled reports whether the connection was reused: a pooled connection may
// be stale (its server restarted under the same ID), so the caller redials
// once when the first exchange on it fails.
func (n *TCPNetwork) getConn(to types.ServerID) (c net.Conn, pooled bool, err error) {
	n.mu.Lock()
	if _, ok := n.addrs[to]; !ok {
		n.mu.Unlock()
		return nil, false, ErrUnreachable
	}
	if conns := n.pool[to]; len(conns) > 0 {
		c := conns[len(conns)-1]
		n.pool[to] = conns[:len(conns)-1]
		n.mu.Unlock()
		return c, true, nil
	}
	n.mu.Unlock()
	c, err = n.dial(to)
	return c, false, err
}

// dial opens a fresh connection to the destination's current address.
func (n *TCPNetwork) dial(to types.ServerID) (net.Conn, error) {
	n.mu.Lock()
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnreachable
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return c, nil
}

func (n *TCPNetwork) putConn(to types.ServerID, c net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.addrs[to]; !ok || len(n.pool[to]) >= 8 {
		_ = c.Close() // pool full or destination gone; drop the spare conn
		return
	}
	n.pool[to] = append(n.pool[to], c)
}

// Send implements Network. With multiplexing enabled the request rides a
// shared pipelined connection (see mux.go). On the baseline path a request
// that fails on a pooled connection is retried once on a freshly dialed
// one: the pooled connection may simply be stale because its server
// restarted under the same ID, and that salvage must not surface as a
// request failure.
func (n *TCPNetwork) Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	if n.muxEnabled() {
		return n.sendMux(ctx, from, to, req)
	}
	conn, pooled, err := n.getConn(to)
	if err != nil {
		return nil, err
	}
	req.From = from
	resp, err := n.exchange(ctx, conn, to, req)
	if err == nil {
		return resp, nil
	}
	if !pooled || errors.Is(err, ErrCorruptFrame) {
		// Fresh dials and integrity failures are genuine; only staleness of
		// a reused connection warrants the silent redial.
		return nil, err
	}
	n.redials.Add(1)
	conn, err = n.dial(to)
	if err != nil {
		return nil, err
	}
	return n.exchange(ctx, conn, to, req)
}

// exchange runs one request/response on the connection, returning it to the
// pool on success and closing it on failure.
func (n *TCPNetwork) exchange(ctx context.Context, conn net.Conn, to types.ServerID, req *Message) (*Message, error) {
	// A failed SetDeadline means the conn is already dead; the exchange
	// below fails and reports it.
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	resp, err := n.send(conn, req)
	if err != nil {
		_ = conn.Close() // exchange failed; the request error is the one reported
		return nil, err
	}
	n.putConn(to, conn)
	return resp, nil
}

// Redials returns how many requests were salvaged by redialing after a
// stale pooled connection failed.
func (n *TCPNetwork) Redials() int64 { return n.redials.Load() }

// MuxRedials returns how many requests were salvaged by replacing a broken
// multiplexed connection.
func (n *TCPNetwork) MuxRedials() int64 { return n.muxRedials.Load() }

// InFlight returns the current number of requests in mux flight (the
// in-flight depth gauge surfaced by FabricStatus).
func (n *TCPNetwork) InFlight() int64 { return n.inflight.Load() }

func (n *TCPNetwork) send(conn net.Conn, req *Message) (*Message, error) {
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	return ReadFrame(conn)
}

// Close tears down all hosted servers, pooled and multiplexed connections.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	servers := make([]*TCPServer, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.servers = make(map[types.ServerID]*TCPServer)
	for id := range n.pool {
		n.dropPoolLocked(id)
	}
	n.addrs = make(map[types.ServerID]string)
	n.mu.Unlock()
	n.dropAllMux()
	for _, s := range servers {
		_ = s.Close() // fabric teardown; listener errors have no consumer
	}
}
