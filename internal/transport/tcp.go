package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corec/internal/types"
)

// The TCP fabric serializes Messages with the wire codec and frames them
// with an 8-byte header: a little-endian payload length followed by the
// payload's CRC32 (IEEE). The checksum turns in-flight corruption into the
// typed, retryable ErrCorruptFrame instead of a decode panic or silent
// garbage; because the length prefix still bounds the frame, the stream
// stays aligned and the connection survives a corrupt frame. Each in-flight
// request owns one pooled connection, so responses need no correlation IDs.

const maxFrame = 1 << 30

// frameHeaderSize is the frame header: uint32 payload length + uint32 CRC32.
const frameHeaderSize = 8

// EncodeFrame serializes one message into a self-contained frame:
// length-prefixed, CRC32-protected wire bytes as written to a TCP stream.
func EncodeFrame(m *Message) []byte {
	buf := Encode(m, make([]byte, frameHeaderSize, frameHeaderSize+m.WireSize()))
	payload := buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// DecodeFrame parses one complete frame produced by EncodeFrame, verifying
// its CRC32 before decoding. A checksum mismatch yields ErrCorruptFrame.
func DecodeFrame(buf []byte) (*Message, error) {
	if len(buf) < frameHeaderSize {
		return nil, fmt.Errorf("transport: frame of %d bytes shorter than header", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if int(n)+frameHeaderSize != len(buf) {
		return nil, fmt.Errorf("transport: frame length %d does not match %d buffered bytes", n, len(buf)-frameHeaderSize)
	}
	return verifyFramePayload(binary.LittleEndian.Uint32(buf[4:8]), buf[frameHeaderSize:])
}

func verifyFramePayload(wantCRC uint32, payload []byte) (*Message, error) {
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorruptFrame, got, wantCRC)
	}
	return Decode(payload)
}

// WriteFrame writes one length-prefixed, CRC32-protected message to w.
func WriteFrame(w io.Writer, m *Message) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadFrame reads one frame from r, verifying its integrity. Corruption
// surfaces as ErrCorruptFrame with the stream still aligned on the next
// frame boundary (the length prefix was honoured).
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return verifyFramePayload(binary.LittleEndian.Uint32(hdr[4:8]), buf)
}

// TCPServer serves the staging protocol on a TCP listener, dispatching each
// request to a Handler. One goroutine per connection; requests on a
// connection are served sequentially (matching the client's one-request-
// per-connection discipline).
type TCPServer struct {
	handler  Handler
	listener net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer listens on addr (e.g. "127.0.0.1:0") and serves requests
// with h until Close.
func NewTCPServer(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{handler: h, listener: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.listener.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // raced with Close; connection was never served
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // nothing to flush on a request/response stream
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				// The frame boundary held (length prefix was valid), so the
				// stream is still aligned: report the corruption as a
				// retryable error and keep the connection.
				resp := Errf("%v", err)
				resp.Flag = true // retryable: the client should resend
				if WriteFrame(conn, resp) == nil {
					continue
				}
			}
			return
		}
		resp := s.handler(context.Background(), req)
		if resp == nil {
			resp = Ok()
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting and tears down all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for c := range s.conns {
		_ = c.Close() // serveConn exits on the closed conn; listener error is the one reported
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPNetwork implements Network over TCP: a directory maps server IDs to
// addresses, and a small per-destination connection pool amortizes dials.
// Register/Unregister manage locally hosted servers (each gets its own
// TCPServer).
type TCPNetwork struct {
	mu      sync.Mutex
	addrs   map[types.ServerID]string
	servers map[types.ServerID]*TCPServer
	pool    map[types.ServerID][]net.Conn
	// listenAddr is the host/interface used for locally hosted servers.
	listenAddr string
	// redials counts requests salvaged by redialing after a pooled
	// connection turned out to be stale (server restarted under its ID).
	redials atomic.Int64
}

var _ Network = (*TCPNetwork)(nil)

// NewTCPNetwork creates a TCP fabric whose locally registered servers bind
// to listenHost (e.g. "127.0.0.1").
func NewTCPNetwork(listenHost string) *TCPNetwork {
	return &TCPNetwork{
		addrs:      make(map[types.ServerID]string),
		servers:    make(map[types.ServerID]*TCPServer),
		pool:       make(map[types.ServerID][]net.Conn),
		listenAddr: listenHost,
	}
}

// Register implements Network: it spins up a TCP server for the handler on
// an ephemeral port and records its address.
func (n *TCPNetwork) Register(id types.ServerID, h Handler) {
	srv, err := NewTCPServer(net.JoinHostPort(n.listenAddr, "0"), h)
	if err != nil {
		// Registration has no error path in the interface; fail loudly.
		panic(fmt.Sprintf("transport: cannot listen for server %d: %v", id, err))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.servers[id]; ok {
		_ = old.Close() // replaced server; its listener error has no consumer
	}
	n.servers[id] = srv
	n.addrs[id] = srv.Addr()
	n.dropPoolLocked(id)
}

// Addr returns the known address for a server, if any.
func (n *TCPNetwork) Addr(id types.ServerID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	return addr, ok
}

// Registered reports whether the fabric knows an address for the server.
func (n *TCPNetwork) Registered(id types.ServerID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.addrs[id]
	return ok
}

// AddRemote records the address of a server hosted elsewhere.
func (n *TCPNetwork) AddRemote(id types.ServerID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
	n.dropPoolLocked(id)
}

// Unregister implements Network.
func (n *TCPNetwork) Unregister(id types.ServerID) {
	n.mu.Lock()
	srv := n.servers[id]
	delete(n.servers, id)
	delete(n.addrs, id)
	n.dropPoolLocked(id)
	n.mu.Unlock()
	if srv != nil {
		_ = srv.Close() // unregistering; the server is gone either way
	}
}

func (n *TCPNetwork) dropPoolLocked(id types.ServerID) {
	for _, c := range n.pool[id] {
		_ = c.Close() // idle pooled conns; nothing in flight
	}
	delete(n.pool, id)
}

// getConn returns a connection to the destination, preferring the pool.
// pooled reports whether the connection was reused: a pooled connection may
// be stale (its server restarted under the same ID), so the caller redials
// once when the first exchange on it fails.
func (n *TCPNetwork) getConn(to types.ServerID) (c net.Conn, pooled bool, err error) {
	n.mu.Lock()
	if _, ok := n.addrs[to]; !ok {
		n.mu.Unlock()
		return nil, false, ErrUnreachable
	}
	if conns := n.pool[to]; len(conns) > 0 {
		c := conns[len(conns)-1]
		n.pool[to] = conns[:len(conns)-1]
		n.mu.Unlock()
		return c, true, nil
	}
	n.mu.Unlock()
	c, err = n.dial(to)
	return c, false, err
}

// dial opens a fresh connection to the destination's current address.
func (n *TCPNetwork) dial(to types.ServerID) (net.Conn, error) {
	n.mu.Lock()
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnreachable
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	return c, nil
}

func (n *TCPNetwork) putConn(to types.ServerID, c net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.addrs[to]; !ok || len(n.pool[to]) >= 8 {
		_ = c.Close() // pool full or destination gone; drop the spare conn
		return
	}
	n.pool[to] = append(n.pool[to], c)
}

// Send implements Network. A request that fails on a pooled connection is
// retried once on a freshly dialed one: the pooled connection may simply be
// stale because its server restarted under the same ID, and that salvage
// must not surface as a request failure.
func (n *TCPNetwork) Send(ctx context.Context, from, to types.ServerID, req *Message) (*Message, error) {
	conn, pooled, err := n.getConn(to)
	if err != nil {
		return nil, err
	}
	req.From = from
	resp, err := n.exchange(ctx, conn, to, req)
	if err == nil {
		return resp, nil
	}
	if !pooled || errors.Is(err, ErrCorruptFrame) {
		// Fresh dials and integrity failures are genuine; only staleness of
		// a reused connection warrants the silent redial.
		return nil, err
	}
	n.redials.Add(1)
	conn, err = n.dial(to)
	if err != nil {
		return nil, err
	}
	return n.exchange(ctx, conn, to, req)
}

// exchange runs one request/response on the connection, returning it to the
// pool on success and closing it on failure.
func (n *TCPNetwork) exchange(ctx context.Context, conn net.Conn, to types.ServerID, req *Message) (*Message, error) {
	// A failed SetDeadline means the conn is already dead; the exchange
	// below fails and reports it.
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Time{})
	}
	resp, err := n.send(conn, req)
	if err != nil {
		_ = conn.Close() // exchange failed; the request error is the one reported
		return nil, err
	}
	n.putConn(to, conn)
	return resp, nil
}

// Redials returns how many requests were salvaged by redialing after a
// stale pooled connection failed.
func (n *TCPNetwork) Redials() int64 { return n.redials.Load() }

func (n *TCPNetwork) send(conn net.Conn, req *Message) (*Message, error) {
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	return ReadFrame(conn)
}

// Close tears down all hosted servers and pooled connections.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	servers := make([]*TCPServer, 0, len(n.servers))
	for _, s := range n.servers {
		servers = append(servers, s)
	}
	n.servers = make(map[types.ServerID]*TCPServer)
	for id := range n.pool {
		n.dropPoolLocked(id)
	}
	n.addrs = make(map[types.ServerID]string)
	n.mu.Unlock()
	for _, s := range servers {
		_ = s.Close() // fabric teardown; listener errors have no consumer
	}
}
