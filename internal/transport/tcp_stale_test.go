package transport

import (
	"context"
	"testing"
)

// TestTCPStalePoolRedial restarts a server under the same address and
// checks the client fabric salvages the request: the first exchange rides a
// pooled connection that died with the old process, fails, and is redialed
// once against the new listener — the caller never sees the staleness.
func TestTCPStalePoolRedial(t *testing.T) {
	echo := func(ctx context.Context, req *Message) *Message {
		return &Message{Kind: MsgOK, Var: req.Var}
	}
	srv, err := NewTCPServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	n.AddRemote(3, addr)
	ctx := context.Background()

	resp, err := n.Send(ctx, -1, 3, &Message{Kind: MsgPing, Var: "warm"})
	if err != nil || resp.Var != "warm" {
		t.Fatalf("warmup exchange: %v (%+v)", err, resp)
	}
	if n.Redials() != 0 {
		t.Fatalf("redials after warmup = %d, want 0", n.Redials())
	}

	// Restart the server on the same address: the pooled connection is now
	// stale, but the fabric's directory entry is still correct.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := NewTCPServer(addr, echo)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer srv2.Close()

	resp, err = n.Send(ctx, -1, 3, &Message{Kind: MsgPing, Var: "again"})
	if err != nil {
		t.Fatalf("send across restart not salvaged: %v", err)
	}
	if resp.Var != "again" {
		t.Fatalf("resp = %+v", resp)
	}
	if n.Redials() != 1 {
		t.Fatalf("redials = %d, want exactly 1", n.Redials())
	}
}
