package transport

import (
	"encoding/binary"
	"fmt"

	"corec/internal/geometry"
	"corec/internal/types"
)

// The wire format is a hand-rolled little-endian binary encoding. Strings
// and byte slices are length-prefixed with uint32; optional sub-records
// (Meta, StripeInfo) carry a one-byte presence flag. It exists so the TCP
// fabric has a stable, allocation-conscious codec without reflection
// (encoding/gob) or external schema tooling.

const maxWireLen = 1 << 30 // sanity bound on any length prefix

type encoder struct {
	buf []byte
	// splitData, when set, makes bytes() emit only the length prefix and
	// record the payload's insertion point in *dataMark: the caller sends
	// the Data slice itself as a separate scatter-gather segment, so the
	// payload is never copied into the wire buffer.
	splitData bool
	dataMark  *int
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// bytes is only used for the Message.Data payload, which is why the
// split-mode shortcut can assume it runs at most once per message.
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	if e.splitData {
		*e.dataMark = len(e.buf)
		return
	}
	e.buf = append(e.buf, b...)
}

func (e *encoder) box(b geometry.Box) {
	e.u8(uint8(b.Dims()))
	for _, v := range b.Lo {
		e.i64(v)
	}
	for _, v := range b.Hi {
		e.i64(v)
	}
}

func (e *encoder) meta(m *types.ObjectMeta) {
	e.str(m.ID.Var)
	e.box(m.ID.Box)
	e.i64(int64(m.Version))
	e.u64(m.Seq)
	e.u64(uint64(m.Size))
	e.u8(uint8(m.State))
	e.u64(m.Checksum)
	e.i64(int64(m.Primary))
	e.u32(uint32(len(m.Replicas)))
	for _, r := range m.Replicas {
		e.i64(int64(r))
	}
	e.i64(int64(m.Stripe.Group))
	e.u64(m.Stripe.Seq)
	e.i64(int64(m.ShardIndex))
}

func (e *encoder) stripeInfo(s *types.StripeInfo) {
	e.i64(int64(s.ID.Group))
	e.u64(s.ID.Seq)
	e.u32(uint32(s.K))
	e.u32(uint32(s.M))
	e.u64(uint64(s.ShardSize))
	e.u32(uint32(len(s.Members)))
	for _, m := range s.Members {
		e.i64(int64(m.Server))
		e.u32(uint32(m.Index))
		e.str(m.ObjectKey)
	}
}

type decoder struct {
	buf []byte
	off int
	err error
	// aliasData, when set, lets bytes() return a sub-slice of buf for large
	// payloads instead of copying; aliased records whether it did, because
	// ownership of buf then transfers to the Message.
	aliasData bool
	aliased   bool
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || n > maxWireLen || d.off+int(n) > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// aliasMinBytes is the smallest Data payload the alias-mode decoder hands
// out as a sub-slice of the frame buffer. Below it the copy is cheaper than
// losing the buffer to the pool; the 4·n ≥ cap guard additionally refuses
// to pin a large pooled buffer for a comparatively small payload.
const aliasMinBytes = 4 << 10

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || n > maxWireLen || d.off+int(n) > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	if d.aliasData && int(n) >= aliasMinBytes && 4*int(n) >= cap(d.buf) {
		b := d.buf[d.off : d.off+int(n) : d.off+int(n)]
		d.off += int(n)
		d.aliased = true
		return b
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += int(n)
	return b
}

func (d *decoder) box() geometry.Box {
	dims := int(d.u8())
	if dims == 0 {
		return geometry.Box{}
	}
	if dims > geometry.MaxDims {
		d.fail("box dims")
		return geometry.Box{}
	}
	lo := make([]int64, dims)
	hi := make([]int64, dims)
	for i := range lo {
		lo[i] = d.i64()
	}
	for i := range hi {
		hi[i] = d.i64()
	}
	return geometry.Box{Lo: lo, Hi: hi}
}

func (d *decoder) meta() types.ObjectMeta {
	var m types.ObjectMeta
	m.ID.Var = d.str()
	m.ID.Box = d.box()
	m.Version = types.Version(d.i64())
	m.Seq = d.u64()
	m.Size = int(d.u64())
	m.State = types.ResilienceState(d.u8())
	m.Checksum = d.u64()
	m.Primary = types.ServerID(d.i64())
	n := d.u32()
	if n > 1<<20 {
		d.fail("replica count")
		return m
	}
	if n > 0 {
		m.Replicas = make([]types.ServerID, n)
		for i := range m.Replicas {
			m.Replicas[i] = types.ServerID(d.i64())
		}
	}
	m.Stripe.Group = int(d.i64())
	m.Stripe.Seq = d.u64()
	m.ShardIndex = int(d.i64())
	return m
}

func (d *decoder) stripeInfo() *types.StripeInfo {
	s := &types.StripeInfo{}
	s.ID.Group = int(d.i64())
	s.ID.Seq = d.u64()
	s.K = int(d.u32())
	s.M = int(d.u32())
	s.ShardSize = int(d.u64())
	n := d.u32()
	if n > 1<<20 {
		d.fail("stripe member count")
		return s
	}
	s.Members = make([]types.StripeMember, n)
	for i := range s.Members {
		s.Members[i].Server = types.ServerID(d.i64())
		s.Members[i].Index = int(d.u32())
		s.Members[i].ObjectKey = d.str()
	}
	return s
}

// EncodeOpt tunes one Encode call. Options exist so the zero-copy framing
// layer can reuse the single canonical field walk below instead of keeping
// a drift-prone duplicate of it.
type EncodeOpt func(*encoder)

// SplitData makes Encode emit everything except the Data payload bytes:
// the length prefix is written as usual and the payload's insertion offset
// is stored in *mark, so the caller can write buf[:mark], m.Data, buf[mark:]
// as one scatter-gather frame without ever copying the payload.
func SplitData(mark *int) EncodeOpt {
	return func(e *encoder) {
		e.splitData = true
		e.dataMark = mark
	}
}

// DecodeOpt tunes one Decode call.
type DecodeOpt func(*decoder)

// AliasData makes Decode return large Data payloads as sub-slices of buf
// instead of copies. When aliasing happens, ownership of buf transfers to
// the Message (recorded in its pooled handle, consumed by Recycle) and the
// buffer must not be reused or recycled by the caller; Aliased reports the
// outcome.
func AliasData() DecodeOpt {
	return func(d *decoder) {
		d.aliasData = true
	}
}

// Aliased reports whether the message's Data aliases the decode buffer
// (ownership of the buffer rests with the message).
func (m *Message) Aliased() bool { return m.pooled != nil }

// Encode serializes the message, appending to dst (which may be nil) and
// returning the extended slice.
func Encode(m *Message, dst []byte, opts ...EncodeOpt) []byte {
	e := encoder{buf: dst}
	for _, o := range opts {
		o(&e)
	}
	e.u8(uint8(m.Kind))
	e.i64(int64(m.From))
	e.str(m.Var)
	e.box(m.Box)
	e.i64(int64(m.Version))
	e.bytes(m.Data)
	e.str(m.Key)
	e.i64(int64(m.Stripe.Group))
	e.u64(m.Stripe.Seq)
	e.i64(int64(m.ShardIndex))
	e.u32(uint32(m.K))
	e.u32(uint32(m.M))
	e.u64(uint64(m.ShardSize))
	e.bool(m.Meta != nil)
	if m.Meta != nil {
		e.meta(m.Meta)
	}
	e.u32(uint32(len(m.Metas)))
	for i := range m.Metas {
		e.meta(&m.Metas[i])
	}
	e.bool(m.StripeInfo != nil)
	if m.StripeInfo != nil {
		e.stripeInfo(m.StripeInfo)
	}
	e.u32(uint32(len(m.Stripes)))
	for i := range m.Stripes {
		e.stripeInfo(&m.Stripes[i])
	}
	e.bool(m.Flag)
	e.i64(m.Num)
	e.u64(m.Sum)
	e.str(m.Err)
	_ = m.pooled // buffer-ownership bookkeeping, deliberately not a wire field
	return e.buf
}

// Decode parses a message previously produced by Encode.
func Decode(buf []byte, opts ...DecodeOpt) (*Message, error) {
	d := decoder{buf: buf}
	for _, o := range opts {
		o(&d)
	}
	m := &Message{}
	k := d.u8()
	if k >= uint8(kindCount) {
		return nil, fmt.Errorf("transport: unknown message kind %d", k)
	}
	m.Kind = Kind(k)
	m.From = types.ServerID(d.i64())
	m.Var = d.str()
	m.Box = d.box()
	m.Version = types.Version(d.i64())
	m.Data = d.bytes()
	m.Key = d.str()
	m.Stripe.Group = int(d.i64())
	m.Stripe.Seq = d.u64()
	m.ShardIndex = int(d.i64())
	m.K = int(d.u32())
	m.M = int(d.u32())
	m.ShardSize = int(d.u64())
	if d.bool() {
		meta := d.meta()
		m.Meta = &meta
	}
	nm := d.u32()
	if nm > 1<<20 {
		return nil, fmt.Errorf("transport: implausible meta count %d", nm)
	}
	if nm > 0 {
		m.Metas = make([]types.ObjectMeta, nm)
		for i := range m.Metas {
			m.Metas[i] = d.meta()
		}
	}
	if d.bool() {
		m.StripeInfo = d.stripeInfo()
	}
	ns := d.u32()
	if ns > 1<<20 {
		return nil, fmt.Errorf("transport: implausible stripe count %d", ns)
	}
	if ns > 0 {
		m.Stripes = make([]types.StripeInfo, ns)
		for i := range m.Stripes {
			m.Stripes[i] = *d.stripeInfo()
		}
	}
	m.Flag = d.bool()
	m.Num = d.i64()
	m.Sum = d.u64()
	m.Err = d.str()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(buf) {
		return nil, fmt.Errorf("transport: %d trailing bytes after message", len(buf)-d.off)
	}
	if d.aliased {
		m.pooled = buf
	}
	return m, nil
}
