package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corec/internal/failure"
	"corec/internal/types"
)

// muxNetwork returns a TCP fabric with multiplexing enabled and an echo
// server registered under id 0.
func muxNetwork(t *testing.T, conns, window int) *TCPNetwork {
	t.Helper()
	n := NewTCPNetwork("127.0.0.1")
	n.ConfigureMux(conns, window)
	n.Register(0, echoHandler)
	t.Cleanup(n.Close)
	return n
}

// TestWriteFrameIDMatchesEncodeFrame differentially checks the zero-copy
// scatter-gather writer against the allocate-and-copy framer: byte-for-byte
// identical frames for the same message, across payload sizes that cross
// the alias threshold and the split-write path.
func TestWriteFrameIDMatchesEncodeFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 100, aliasMinBytes - 1, aliasMinBytes, 1 << 20} {
		m := &Message{Kind: MsgPut, From: -3, Var: "v", Key: "k", Version: 9, Flag: true, Num: 42}
		if size > 0 {
			m.Data = make([]byte, size)
			rng.Read(m.Data)
		}
		want := encodeFrameID(m, 77)
		var got bytes.Buffer
		if err := writeFrameID(&got, m, 77); err != nil {
			t.Fatalf("size %d: writeFrameID: %v", size, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("size %d: scatter-gather frame differs from EncodeFrame (%d vs %d bytes)",
				size, got.Len(), len(want))
		}
		reqID, back, err := readFramePooled(bytes.NewReader(got.Bytes()), make([]byte, frameHeaderSize))
		if err != nil {
			t.Fatalf("size %d: readFramePooled: %v", size, err)
		}
		if reqID != 77 {
			t.Fatalf("size %d: reqID = %d, want 77", size, reqID)
		}
		if back.Var != m.Var || back.Num != m.Num || !bytes.Equal(back.Data, m.Data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		Recycle(back)
	}
}

// TestAliasDecodeOwnership checks the pooled read path's ownership rules:
// large payloads alias the frame buffer (which is then withheld from the
// pool until Recycle), small payloads are copied and the buffer recycled
// immediately.
func TestAliasDecodeOwnership(t *testing.T) {
	big := &Message{Kind: MsgGetBytes, Data: bytes.Repeat([]byte{5}, 64<<10)}
	frame := encodeFrameID(big, 1)
	_, m, err := readFramePooled(bytes.NewReader(frame), make([]byte, frameHeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Aliased() {
		t.Fatal("64KiB payload was copied, want aliased")
	}
	if !bytes.Equal(m.Data, big.Data) {
		t.Fatal("aliased payload corrupted")
	}
	// Recycling returns the buffer: a following same-class read should hit
	// the pool. Double recycle must be a no-op. Under the race detector
	// sync.Pool randomly discards Puts, so allow a few round trips before
	// requiring a hit.
	hits0, _ := BufferPoolStats()
	Recycle(m)
	if m.Data != nil || m.Aliased() {
		t.Fatal("Recycle left the message holding the buffer")
	}
	Recycle(m)
	reused := false
	for i := 0; i < 8 && !reused; i++ {
		_, m2, err := readFramePooled(bytes.NewReader(frame), make([]byte, frameHeaderSize))
		if err != nil {
			t.Fatal(err)
		}
		hits1, _ := BufferPoolStats()
		reused = hits1 > hits0
		hits0 = hits1
		Recycle(m2)
	}
	if !reused {
		t.Fatal("recycled buffer never reused by subsequent reads")
	}

	small := &Message{Kind: MsgGetBytes, Data: []byte("tiny")}
	_, m, err = readFramePooled(bytes.NewReader(encodeFrameID(small, 2)), make([]byte, frameHeaderSize))
	if err != nil {
		t.Fatal(err)
	}
	if m.Aliased() {
		t.Fatal("4-byte payload aliased a pooled buffer")
	}
	if !bytes.Equal(m.Data, small.Data) {
		t.Fatal("copied payload corrupted")
	}
}

// TestPipelinedStreamFuzzCorruptionRealigns fuzzes a pipelined frame
// stream: several frames back to back with one corrupted mid-stream. Only
// the corrupted frame's request may fail — with ErrCorruptFrame and its
// own recovered request ID — and every later frame must decode intact,
// because the length prefix keeps the stream aligned.
func TestPipelinedStreamFuzzCorruptionRealigns(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 200; round++ {
		frames := 2 + rng.Intn(6)
		victim := rng.Intn(frames)
		var stream bytes.Buffer
		sizes := make([]int, frames)
		for i := 0; i < frames; i++ {
			sizes[i] = rng.Intn(8 << 10)
			m := &Message{Kind: MsgGetBytes, Num: int64(i), Data: make([]byte, sizes[i])}
			rng.Read(m.Data)
			frame := encodeFrameID(m, uint64(100+i))
			if i == victim {
				// Corrupt one payload byte (past the header, so the frame
				// boundary holds and realignment is possible).
				off := frameHeaderSize + rng.Intn(len(frame)-frameHeaderSize)
				frame[off] ^= 1 << uint(rng.Intn(8))
			}
			stream.Write(frame)
		}
		r := bytes.NewReader(stream.Bytes())
		for i := 0; i < frames; i++ {
			reqID, m, err := readFramePooled(r, make([]byte, frameHeaderSize))
			if reqID != uint64(100+i) {
				t.Fatalf("round %d frame %d: reqID %d, want %d", round, i, reqID, 100+i)
			}
			if i == victim {
				if !errors.Is(err, ErrCorruptFrame) {
					t.Fatalf("round %d: corrupt frame %d returned %v, want ErrCorruptFrame", round, i, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("round %d: healthy frame %d after corruption: %v", round, i, err)
			}
			if m.Num != int64(i) || len(m.Data) != sizes[i] {
				t.Fatalf("round %d: frame %d decoded wrong (Num=%d len=%d)", round, i, m.Num, len(m.Data))
			}
			Recycle(m)
		}
	}
}

// TestMuxConcurrentNoCrosstalk pushes many concurrent requests over a small
// shared connection set and checks every response reaches its own request.
func TestMuxConcurrentNoCrosstalk(t *testing.T) {
	n := muxNetwork(t, 2, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(i)}, 1+i*137)
			resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: int64(i), Data: payload})
			if err != nil {
				errs <- err
				return
			}
			if resp.Num != int64(i) || !bytes.Equal(resp.Data, payload) {
				errs <- fmt.Errorf("request %d: response crosstalk", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if live := n.ActiveMuxConns(); live == 0 || live > 2 {
		t.Fatalf("ActiveMuxConns = %d, want 1..2", live)
	}
}

// TestMuxInFlightWindowBounds checks the pipelining window backpressures:
// with every handler blocked, at most conns*window requests enter flight.
func TestMuxInFlightWindowBounds(t *testing.T) {
	gate := make(chan struct{})
	var entered atomic.Int64
	n := NewTCPNetwork("127.0.0.1")
	n.ConfigureMux(1, 4)
	n.Register(0, func(ctx context.Context, req *Message) *Message {
		entered.Add(1)
		<-gate
		return Ok()
	})
	defer n.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing})
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for entered.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give excess requests a chance to leak
	if got := n.InFlight(); got > 4 {
		t.Fatalf("in-flight %d requests with window 4", got)
	}
	close(gate)
	wg.Wait()
	if got := n.InFlight(); got != 0 {
		t.Fatalf("in-flight gauge %d after drain, want 0", got)
	}
}

// TestMuxBrokenConnSalvagedByRedial strands a request mid-flight by
// severing its connection; the retry-free mux path itself must salvage the
// failure on a fresh connection (the mux analogue of the stale-pool
// redial).
func TestMuxBrokenConnSalvagedByRedial(t *testing.T) {
	entered := make(chan struct{})
	gate := make(chan struct{})
	var first atomic.Bool
	n := NewTCPNetwork("127.0.0.1")
	n.ConfigureMux(1, 8)
	n.Register(0, func(ctx context.Context, req *Message) *Message {
		if req.Num == 99 && first.CompareAndSwap(false, true) {
			entered <- struct{}{}
			// Park the first attempt until test end: its connection dies
			// underneath it, so its (unwritable) response is irrelevant.
			<-gate
		}
		return echoHandler(ctx, req)
	})
	defer n.Close()
	defer close(gate) // release the parked handler so Close can drain

	done := make(chan error, 1)
	go func() {
		resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: 99})
		if err == nil && resp.Num != 99 {
			err = fmt.Errorf("wrong response %d", resp.Num)
		}
		done <- err
	}()
	<-entered
	// Sever the connection carrying the in-flight request: the pending
	// request fails with ErrConnBroken and must be transparently resent on
	// a freshly dialed connection.
	if broken := n.BreakConns(0); broken == 0 {
		t.Fatal("BreakConns severed nothing")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("request across connection break: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request stranded after connection break")
	}
	if n.MuxRedials() == 0 {
		t.Fatal("break salvage did not count a mux redial")
	}
}

// TestMuxContextCancelAbandonsRequest checks a cancelled request releases
// its window slot and later responses for it are silently dropped.
func TestMuxContextCancelAbandonsRequest(t *testing.T) {
	gate := make(chan struct{})
	n := NewTCPNetwork("127.0.0.1")
	n.ConfigureMux(1, 2)
	n.Register(0, func(ctx context.Context, req *Message) *Message {
		if req.Num == 1 {
			<-gate
		}
		return echoHandler(ctx, req)
	})
	defer n.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := n.Send(ctx, -1, 0, &Message{Kind: MsgPing, Num: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	close(gate) // the late response must be discarded, not crosstalked
	resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: 2})
	if err != nil || resp.Num != 2 {
		t.Fatalf("send after cancel: %v (resp %+v)", err, resp)
	}
	if got := n.InFlight(); got != 0 {
		t.Fatalf("in-flight gauge %d after cancel+drain, want 0", got)
	}
}

// TestMuxBreakConnsSeversAndRecovers exercises the fault injector's
// connection-break hook directly: live mux connections die, idle ones are
// culled, and the next request transparently dials fresh.
func TestMuxBreakConnsSeversAndRecovers(t *testing.T) {
	n := muxNetwork(t, 2, 8)
	for i := 0; i < 4; i++ {
		if _, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing}); err != nil {
			t.Fatal(err)
		}
	}
	if broken := n.BreakConns(0); broken == 0 {
		t.Fatal("BreakConns severed nothing")
	}
	if live := n.ActiveMuxConns(); live != 0 {
		t.Fatalf("%d live mux conns after BreakConns", live)
	}
	resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: 5})
	if err != nil || resp.Num != 5 {
		t.Fatalf("send after BreakConns: %v", err)
	}
}

// TestChaosMuxConcurrentClientsUnderFaults is the transport-level chaos
// test: concurrent clients share multiplexed connections while the seeded
// injector drops, corrupts (both directions), severs connections, and a
// transient partition opens and heals. Every request must either succeed
// with its own response (no crosstalk) or fail with a typed retryable
// error, and the salvage/injection counters must move.
func TestChaosMuxConcurrentClientsUnderFaults(t *testing.T) {
	inner := NewTCPNetwork("127.0.0.1")
	inner.ConfigureMux(2, 8)
	inner.Register(0, func(ctx context.Context, req *Message) *Message {
		time.Sleep(200 * time.Microsecond) // keep requests in flight so breaks hit pipelined neighbours
		return echoHandler(ctx, req)
	})
	defer inner.Close()
	plan := &failure.FaultPlan{
		Seed: 23,
		Links: []failure.LinkFault{{
			DropProb:        0.03,
			CorruptProb:     0.03,
			RespCorruptProb: 0.03,
			ConnBreakProb:   0.02,
		}},
	}
	fn := NewFaultyNetwork(inner, plan)
	policy := RetryPolicy{MaxAttempts: 8, BaseBackoff: 200 * time.Microsecond, MaxBackoff: 5 * time.Millisecond, JitterFrac: 0.5}

	const workers, perWorker = 8, 60
	var wg sync.WaitGroup
	var ok, retried atomic.Int64
	errs := make(chan error, workers*perWorker)
	var healOnce sync.Once
	heal := func() {}
	var healMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/3 {
					// Open a transient partition mid-run; heal it shortly
					// after so retries can ride it out.
					healOnce.Do(func() {
						h := fn.Partition([]types.ServerID{0}, []types.ServerID{1})
						healMu.Lock()
						heal = h
						healMu.Unlock()
						time.AfterFunc(10*time.Millisecond, func() {
							healMu.Lock()
							defer healMu.Unlock()
							heal()
						})
					})
				}
				num := int64(w*perWorker + i)
				resp, attempts, err := policy.Send(context.Background(), fn, types.ServerID(1), 0, &Message{Kind: MsgPing, Num: num})
				if attempts > 1 {
					retried.Add(1)
				}
				if err != nil {
					if !IsRetryable(err) {
						errs <- fmt.Errorf("worker %d op %d: terminal error %v", w, i, err)
					}
					continue
				}
				if resp.Num != num {
					errs <- fmt.Errorf("worker %d op %d: crosstalk (got %d)", w, i, resp.Num)
					continue
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	total := int64(workers * perWorker)
	if ok.Load() < total*9/10 {
		t.Fatalf("only %d/%d requests succeeded under faults", ok.Load(), total)
	}
	st := fn.Stats()
	if st.Drops == 0 || st.Corrupts == 0 || st.RespCorrupts == 0 || st.ConnBreaks == 0 {
		t.Fatalf("injector idle: %+v", st)
	}
	if retried.Load() == 0 {
		t.Fatal("no request ever retried despite injected faults")
	}
	// Requests stranded on severed connections must have been salvaged by
	// the mux redial path at least once across this much connection churn.
	if inner.MuxRedials() == 0 {
		t.Fatal("no mux redial despite injected connection breaks")
	}
	// The fabric must end the run quiescent and usable.
	if _, _, err := policy.Send(context.Background(), fn, -1, 0, &Message{Kind: MsgPing, Num: -7}); err != nil {
		t.Fatalf("fabric unusable after chaos: %v", err)
	}
	if got := inner.InFlight(); got != 0 {
		t.Fatalf("in-flight gauge %d after chaos drain, want 0", got)
	}
}
