package transport

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"corec/internal/geometry"
	"corec/internal/types"
)

func sampleMessage() *Message {
	return &Message{
		Kind:       MsgShardPut,
		From:       7,
		Var:        "temperature",
		Box:        geometry.Box3D(0, 16, 32, 64, 80, 96),
		Version:    12,
		Data:       []byte{1, 2, 3, 4, 5},
		Key:        "temperature@[(0,16,32)-(64,80,96))",
		Stripe:     types.StripeID{Group: 3, Seq: 41},
		ShardIndex: 2,
		K:          3, M: 1, ShardSize: 2,
		Meta: &types.ObjectMeta{
			ID:         types.ObjectID{Var: "temperature", Box: geometry.Box3D(0, 16, 32, 64, 80, 96)},
			Version:    12,
			Size:       5,
			State:      types.StateEncoded,
			Checksum:   0xDEADBEEFCAFE0123,
			Primary:    4,
			Replicas:   []types.ServerID{5, 6},
			Stripe:     types.StripeID{Group: 3, Seq: 41},
			ShardIndex: 2,
		},
		Metas: []types.ObjectMeta{
			{ID: types.ObjectID{Var: "p", Box: geometry.Box3D(0, 0, 0, 2, 2, 2)}, Primary: 1},
			{ID: types.ObjectID{Var: "q", Box: geometry.Box3D(2, 2, 2, 4, 4, 4)}, Primary: 2, State: types.StateReplicated},
		},
		StripeInfo: &types.StripeInfo{
			ID: types.StripeID{Group: 3, Seq: 41},
			K:  3, M: 1, ShardSize: 2,
			Members: []types.StripeMember{
				{Server: 0, Index: 0, ObjectKey: "a"},
				{Server: 1, Index: 1, ObjectKey: "b"},
				{Server: 2, Index: 2, ObjectKey: "c"},
				{Server: 3, Index: 3},
			},
		},
		Flag: true,
		Num:  -99,
		Sum:  0x0123456789ABCDEF,
		Err:  "sample error",
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestEncodeDecodeZeroMessage(t *testing.T) {
	m := &Message{}
	got, err := Decode(Encode(m, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("zero message mismatch: %+v", got)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	buf := Encode(&Message{}, nil)
	buf[0] = 200
	if _, err := Decode(buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf := Encode(sampleMessage(), nil)
	for _, cut := range []int{1, 5, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	buf := Encode(&Message{Kind: MsgPing}, nil)
	buf = append(buf, 0xAB)
	if _, err := Decode(buf); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestEncodeDecodePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		m := &Message{
			Kind:    Kind(rng.Intn(int(kindCount))),
			From:    types.ServerID(rng.Intn(64) - 2),
			Var:     randString(rng, 12),
			Version: types.Version(rng.Int63n(1000)),
			Key:     randString(rng, 30),
			Num:     rng.Int63() - (1 << 62),
			Sum:     rng.Uint64(),
			Flag:    rng.Intn(2) == 0,
			Err:     randString(rng, 20),
		}
		if rng.Intn(2) == 0 {
			dims := 1 + rng.Intn(4)
			lo := make([]int64, dims)
			hi := make([]int64, dims)
			for d := range lo {
				lo[d] = int64(rng.Intn(100))
				hi[d] = lo[d] + 1 + int64(rng.Intn(100))
			}
			m.Box = geometry.Box{Lo: lo, Hi: hi}
		}
		if n := rng.Intn(64); n > 0 {
			m.Data = make([]byte, n)
			rng.Read(m.Data)
		}
		got, err := Decode(Encode(m, nil))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestWireSizeDominatedByData(t *testing.T) {
	small := (&Message{Kind: MsgPut}).WireSize()
	big := (&Message{Kind: MsgPut, Data: make([]byte, 1<<20)}).WireSize()
	if big-small != 1<<20 {
		t.Fatalf("WireSize delta = %d, want payload size", big-small)
	}
}

func TestKindString(t *testing.T) {
	if MsgPut.String() != "Put" || MsgTokenAcquire.String() != "TokenAcquire" {
		t.Fatal("kind names wrong")
	}
	if Kind(250).String() == "" {
		t.Fatal("unknown kind string empty")
	}
	if int(kindCount) != len(kindNames) {
		t.Fatalf("kindNames has %d entries for %d kinds", len(kindNames), kindCount)
	}
}

func TestErrfAndAsError(t *testing.T) {
	resp := Errf("boom %d", 7)
	if resp.Kind != MsgErr || resp.Err != "boom 7" {
		t.Fatalf("Errf = %+v", resp)
	}
	if resp.AsError() == nil || resp.AsError().Error() != "boom 7" {
		t.Fatal("AsError lost the message")
	}
	if Ok().AsError() != nil {
		t.Fatal("Ok has an error")
	}
	var nilMsg *Message
	if nilMsg.AsError() != nil {
		t.Fatal("nil message has an error")
	}
}
