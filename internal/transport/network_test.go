package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"corec/internal/simnet"
	"corec/internal/types"
)

func echoHandler(ctx context.Context, req *Message) *Message {
	resp := *req
	resp.Kind = MsgOK
	return &resp
}

func TestInProcSendReceive(t *testing.T) {
	n := NewInProc(simnet.LinkModel{})
	n.Register(0, echoHandler)
	resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Var: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Var != "x" || resp.From != -1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestInProcUnreachable(t *testing.T) {
	n := NewInProc(simnet.LinkModel{})
	if _, err := n.Send(context.Background(), -1, 3, &Message{Kind: MsgPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
	n.Register(3, echoHandler)
	if !n.Registered(3) {
		t.Fatal("Registered(3) false after Register")
	}
	n.Unregister(3)
	if n.Registered(3) {
		t.Fatal("Registered(3) true after Unregister")
	}
	if _, err := n.Send(context.Background(), -1, 3, &Message{Kind: MsgPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v after Unregister, want ErrUnreachable", err)
	}
}

func TestInProcLinkDelayApplied(t *testing.T) {
	// 1ms per message, both directions => >= 2ms round trip.
	n := NewInProc(simnet.LinkModel{Latency: time.Millisecond})
	n.Register(0, echoHandler)
	start := time.Now()
	if _, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 2ms", elapsed)
	}
}

func TestInProcContextCancellation(t *testing.T) {
	n := NewInProc(simnet.LinkModel{Latency: time.Hour})
	n.Register(0, echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := n.Send(ctx, -1, 0, &Message{Kind: MsgPing}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}

func TestInProcStats(t *testing.T) {
	n := NewInProc(simnet.LinkModel{})
	n.Register(0, echoHandler)
	data := make([]byte, 1000)
	if _, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPut, Data: data}); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := n.Stats()
	if msgs != 2 {
		t.Fatalf("msgs = %d, want 2", msgs)
	}
	if bytes < 2000 {
		t.Fatalf("bytes = %d, want >= 2000", bytes)
	}
}

func TestInProcConcurrentSends(t *testing.T) {
	n := NewInProc(simnet.LinkModel{})
	var served sync.Map
	n.Register(0, func(ctx context.Context, req *Message) *Message {
		served.Store(req.Num, true)
		return Ok()
	})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: int64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	count := 0
	served.Range(func(_, _ any) bool { count++; return true })
	if count != 64 {
		t.Fatalf("served %d distinct requests, want 64", count)
	}
}

func TestInProcReRegisterReplacesHandler(t *testing.T) {
	n := NewInProc(simnet.LinkModel{})
	n.Register(0, func(ctx context.Context, req *Message) *Message { return Errf("old") })
	n.Register(0, func(ctx context.Context, req *Message) *Message { return Ok() })
	resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing})
	if err != nil || resp.Kind != MsgOK {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	n.Register(0, echoHandler)
	resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPut, Var: "v", Data: []byte{9, 8, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Var != "v" || len(resp.Data) != 3 || resp.Data[0] != 9 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPUnreachable(t *testing.T) {
	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	if _, err := n.Send(context.Background(), -1, 5, &Message{Kind: MsgPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestTCPUnregisterKillsServer(t *testing.T) {
	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	n.Register(1, echoHandler)
	if _, err := n.Send(context.Background(), -1, 1, &Message{Kind: MsgPing}); err != nil {
		t.Fatal(err)
	}
	n.Unregister(1)
	if _, err := n.Send(context.Background(), -1, 1, &Message{Kind: MsgPing}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v after Unregister, want ErrUnreachable", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	n.Register(0, echoHandler)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing, Num: int64(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp.Num != int64(i) {
				errs <- errors.New("response crosstalk")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPRemoteAddress(t *testing.T) {
	// Host a server on one fabric, reach it from another via AddRemote —
	// the multi-process deployment path.
	host := NewTCPNetwork("127.0.0.1")
	defer host.Close()
	host.Register(2, echoHandler)

	client := NewTCPNetwork("127.0.0.1")
	defer client.Close()
	client.AddRemote(2, hostAddr(t, host, 2))
	resp, err := client.Send(context.Background(), -1, 2, &Message{Kind: MsgPing, Var: "remote"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Var != "remote" {
		t.Fatalf("resp = %+v", resp)
	}
}

func hostAddr(t *testing.T, n *TCPNetwork, id types.ServerID) string {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	addr, ok := n.addrs[id]
	if !ok {
		t.Fatalf("no address for server %d", id)
	}
	return addr
}

func TestTCPPoolReusesConnections(t *testing.T) {
	n := NewTCPNetwork("127.0.0.1")
	defer n.Close()
	n.Register(0, echoHandler)
	for i := 0; i < 10; i++ {
		if _, err := n.Send(context.Background(), -1, 0, &Message{Kind: MsgPing}); err != nil {
			t.Fatal(err)
		}
	}
	n.mu.Lock()
	pooled := len(n.pool[0])
	n.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pool holds %d conns after sequential sends, want 1", pooled)
	}
}
