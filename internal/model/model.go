// Package model implements the analytic cost model of Section II-D: the
// storage-efficiency and write-cost formulas for replication, erasure
// coding, simple hybrid erasure coding, and CoREC (equations 1-9), and a
// sampler that regenerates the Figure 4 curves (relative write cost versus
// hot-data percentage for several classifier miss ratios).
package model

import (
	"fmt"
	"math"
)

// Params are the model's free parameters, using the paper's notation.
type Params struct {
	// NLevel is the resilience level (simultaneous failures tolerated).
	NLevel int
	// NNode is the number of data objects per stripe (k).
	NNode int
	// L is the per-object transfer latency "l" (arbitrary time units).
	L float64
	// C is the streaming transfer cost "c" of one object.
	C float64
	// Alpha scales the O(NLevel*NNode) encoding-computation term.
	Alpha float64
	// FHot and FCold are the update frequencies of hot and cold objects
	// (f_h > f_c).
	FHot, FCold float64
	// N is the number of staged objects (workload scale).
	N float64
	// S is the storage-efficiency constraint (lower bound).
	S float64
}

// Default returns the parameterization used for the Figure 4 reproduction:
// RS(4,3) (NNode=3 data objects, one parity), latency-dominated transfers,
// hot data updated 10x more often than cold.
func Default() Params {
	return Params{
		NLevel: 1,
		NNode:  3,
		L:      1.0,
		C:      0.2,
		Alpha:  1.0,
		FHot:   10,
		FCold:  1,
		N:      1,
		S:      0.67,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.NLevel < 1 || p.NNode < 1 {
		return fmt.Errorf("model: NLevel and NNode must be >= 1")
	}
	if p.FHot <= p.FCold {
		return fmt.Errorf("model: FHot (%v) must exceed FCold (%v)", p.FHot, p.FCold)
	}
	if p.S < 0 || p.S > 1 {
		return fmt.Errorf("model: S = %v outside [0,1]", p.S)
	}
	return nil
}

// Er returns the replication storage efficiency E_r = 1/(NLevel+1).
func (p Params) Er() float64 { return 1 / float64(p.NLevel+1) }

// Ee returns the erasure-coding storage efficiency
// E_e = NNode/(NLevel+NNode).
func (p Params) Ee() float64 { return float64(p.NNode) / float64(p.NLevel+p.NNode) }

// Cr returns the per-object replication cost C_r = l*NLevel + c.
func (p Params) Cr() float64 { return p.L*float64(p.NLevel) + p.C }

// Ce returns the per-object erasure-coding cost
// C_e = alpha*NLevel*NNode + l*(NLevel+NNode)/NNode + c.
func (p Params) Ce() float64 {
	return p.Alpha*float64(p.NLevel)*float64(p.NNode) +
		p.L*float64(p.NLevel+p.NNode)/float64(p.NNode) + p.C
}

// PrConstraint returns P_r = E_r (S - E_e) / (S (E_r - E_e)), the fraction
// of data that may be replicated at the constraint boundary, clamped to
// [0, 1].
func (p Params) PrConstraint() float64 {
	er, ee := p.Er(), p.Ee()
	if p.S <= 0 || er == ee {
		return 1
	}
	pr := er * (p.S - ee) / (p.S * (er - ee))
	return math.Max(0, math.Min(1, pr))
}

// CReplica is equation (4): the cost of replicating everything, as a
// function of the hot fraction ph.
func (p Params) CReplica(ph float64) float64 {
	return (p.FHot-p.FCold)*p.Cr()*p.N*ph + p.Cr()*p.FCold*p.N
}

// CErasure is equation (5): the cost of erasure coding everything.
func (p Params) CErasure(ph float64) float64 {
	return (p.FHot-p.FCold)*p.Ce()*p.N*ph + p.Ce()*p.FCold*p.N
}

// CHybrid is equation (1): simple hybrid with random selection at the
// constraint's P_r, at mean update frequency f = ph*f_h + (1-ph)*f_c.
func (p Params) CHybrid(ph float64) float64 {
	pr := p.PrConstraint()
	f := ph*p.FHot + (1-ph)*p.FCold
	return (pr*p.Cr() + (1-pr)*p.Ce()) * f * p.N
}

// CCoREC is equations (8) and (9): CoREC's cost at hot fraction ph with
// classifier miss ratio rm, under the storage constraint. Below the
// constraint boundary (ph <= effective P_r) all correctly-classified hot
// data is replicated (eq. 8); above it, replication capacity is capped at
// P_r and the remaining hot data is encoded (eq. 9).
func (p Params) CCoREC(ph, rm float64) float64 {
	cr, ce := p.Cr(), p.Ce()
	pr := p.PrConstraint()
	if ph <= pr {
		// Equation (8).
		return (cr*p.FHot-ce*p.FCold+(ce-cr)*p.FHot*rm)*p.N*ph + ce*p.FCold*p.N
	}
	// Equation (9).
	return (p.FHot-p.FCold)*ce*p.N*ph + ce*p.FCold*p.N -
		(ce-cr)*(1-rm)*pr*p.FHot*p.N
}

// Gain is equation (6): the advantage of CoREC over simple hybrid at hot
// fraction ph (perfect classification, no constraint).
func (p Params) Gain(ph float64) float64 {
	return (p.Ce() - p.Cr()) * ph * (1 - ph) * (p.FHot - p.FCold) * p.N
}

// Point is one sample of the Figure 4 curves.
type Point struct {
	// Ph is the hot-data fraction (x axis).
	Ph float64
	// CoREC holds the cost for each requested miss ratio, in order.
	CoREC []float64
	// Replica, Erasure, Hybrid are the baseline costs.
	Replica, Erasure, Hybrid float64
}

// Fig4Curves samples the model across hot-data fractions for the given
// miss ratios, normalizing all costs by the erasure cost at ph=0 so curves
// are "relative write/update cost" as in the paper's figure.
func Fig4Curves(p Params, missRatios []float64, samples int) ([]Point, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if samples < 2 {
		return nil, fmt.Errorf("model: need at least 2 samples")
	}
	norm := p.CErasure(0)
	if norm <= 0 {
		return nil, fmt.Errorf("model: degenerate normalization")
	}
	out := make([]Point, samples)
	for i := 0; i < samples; i++ {
		ph := float64(i) / float64(samples-1)
		pt := Point{
			Ph:      ph,
			Replica: p.CReplica(ph) / norm,
			Erasure: p.CErasure(ph) / norm,
			Hybrid:  p.CHybrid(ph) / norm,
		}
		for _, rm := range missRatios {
			pt.CoREC = append(pt.CoREC, p.CCoREC(ph, rm)/norm)
		}
		out[i] = pt
	}
	return out, nil
}
