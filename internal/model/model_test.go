package model

import (
	"math"
	"testing"
)

func TestEfficiencies(t *testing.T) {
	p := Default() // NLevel=1, NNode=3
	if p.Er() != 0.5 {
		t.Fatalf("Er = %v", p.Er())
	}
	if p.Ee() != 0.75 {
		t.Fatalf("Ee = %v", p.Ee())
	}
}

func TestCostOrdering(t *testing.T) {
	p := Default()
	if p.Ce() <= p.Cr() {
		t.Fatalf("Ce (%v) must exceed Cr (%v): encoding is the expensive path", p.Ce(), p.Cr())
	}
}

func TestValidate(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.FHot = bad.FCold
	if bad.Validate() == nil {
		t.Fatal("FHot == FCold accepted")
	}
	bad = p
	bad.S = 1.5
	if bad.Validate() == nil {
		t.Fatal("S > 1 accepted")
	}
	bad = p
	bad.NNode = 0
	if bad.Validate() == nil {
		t.Fatal("NNode = 0 accepted")
	}
}

func TestCoRECBetweenReplicationAndErasure(t *testing.T) {
	// With perfect classification and no binding constraint, CoREC's cost
	// must sit between pure replication (lower bound) and erasure coding
	// (upper bound) for all hot fractions.
	p := Default()
	p.S = 0 // disable the constraint
	for ph := 0.0; ph <= 1.0; ph += 0.05 {
		c := p.CCoREC(ph, 0)
		if c < p.CReplica(ph)-1e-9 {
			t.Fatalf("ph=%.2f: CoREC %v below replication %v", ph, c, p.CReplica(ph))
		}
		if c > p.CErasure(ph)+1e-9 {
			t.Fatalf("ph=%.2f: CoREC %v above erasure %v", ph, c, p.CErasure(ph))
		}
	}
}

func TestCoRECEqualsErasureAtZeroHot(t *testing.T) {
	// Marker 1 of Figure 4: with no hot data everything is encoded, so
	// CoREC matches erasure coding exactly.
	p := Default()
	if math.Abs(p.CCoREC(0, 0)-p.CErasure(0)) > 1e-9 {
		t.Fatalf("CCoREC(0) = %v, CErasure(0) = %v", p.CCoREC(0, 0), p.CErasure(0))
	}
}

func TestMissRatioDegradesCoREC(t *testing.T) {
	p := Default()
	for _, ph := range []float64{0.1, 0.2, 0.5, 0.8} {
		c0 := p.CCoREC(ph, 0)
		c2 := p.CCoREC(ph, 0.2)
		c4 := p.CCoREC(ph, 0.4)
		if !(c0 <= c2 && c2 <= c4) {
			t.Fatalf("ph=%.1f: costs not monotone in miss ratio: %v %v %v", ph, c0, c2, c4)
		}
	}
}

func TestConstraintKink(t *testing.T) {
	// Above the constraint boundary (Marker 2), CoREC's curve runs parallel
	// to erasure coding with a constant gap (equation 9's final term).
	p := Default()
	pr := p.PrConstraint()
	if pr <= 0 || pr >= 1 {
		t.Fatalf("P_r = %v not an interior point for the default params", pr)
	}
	gap1 := p.CErasure(pr+0.1) - p.CCoREC(pr+0.1, 0)
	gap2 := p.CErasure(pr+0.3) - p.CCoREC(pr+0.3, 0)
	if math.Abs(gap1-gap2) > 1e-9 {
		t.Fatalf("constant-gap property violated: %v vs %v", gap1, gap2)
	}
	if gap1 <= 0 {
		t.Fatal("CoREC must stay cheaper than erasure above the kink")
	}
}

func TestCurveContinuityAtKink(t *testing.T) {
	p := Default()
	pr := p.PrConstraint()
	below := p.CCoREC(pr-1e-9, 0)
	above := p.CCoREC(pr+1e-9, 0)
	if math.Abs(below-above) > 1e-5*math.Abs(below) {
		t.Fatalf("cost discontinuous at constraint: %v vs %v", below, above)
	}
}

func TestGainPeaksAtHalf(t *testing.T) {
	// Equation (6) is proportional to ph*(1-ph): maximum gain at ph = 0.5,
	// zero gain at the extremes.
	p := Default()
	if p.Gain(0) != 0 || p.Gain(1) != 0 {
		t.Fatal("gain must vanish at the extremes")
	}
	if !(p.Gain(0.5) > p.Gain(0.3) && p.Gain(0.5) > p.Gain(0.7)) {
		t.Fatal("gain not maximized at ph = 0.5")
	}
	if p.Gain(0.5) <= 0 {
		t.Fatal("gain must be positive in the interior")
	}
}

func TestFig4Curves(t *testing.T) {
	pts, err := Fig4Curves(Default(), []float64{0, 0.2, 0.4}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 21 {
		t.Fatalf("got %d points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Ph != 0 || last.Ph != 1 {
		t.Fatal("x axis does not span [0,1]")
	}
	if math.Abs(first.Erasure-1) > 1e-9 {
		t.Fatalf("normalization wrong: erasure at ph=0 = %v", first.Erasure)
	}
	for _, pt := range pts {
		if len(pt.CoREC) != 3 {
			t.Fatal("missing miss-ratio curves")
		}
		// Replication is the cheapest resilient curve everywhere.
		if pt.Replica > pt.Erasure {
			t.Fatal("replication costlier than erasure in the model")
		}
	}
	// CoREC must beat simple hybrid in the interior (the paper's central
	// analytic claim, equation 6).
	mid := pts[10]
	if mid.CoREC[0] >= mid.Hybrid {
		t.Fatalf("CoREC (%v) not cheaper than hybrid (%v) at ph=0.5", mid.CoREC[0], mid.Hybrid)
	}
}

func TestFig4CurvesValidation(t *testing.T) {
	if _, err := Fig4Curves(Default(), []float64{0}, 1); err == nil {
		t.Fatal("1 sample accepted")
	}
	bad := Default()
	bad.NNode = 0
	if _, err := Fig4Curves(bad, []float64{0}, 5); err == nil {
		t.Fatal("invalid params accepted")
	}
}
