package membership

import (
	"context"
	"reflect"
	"testing"

	"corec/internal/transport"
	"corec/internal/types"
)

// fleet is an in-memory gossip fabric: agents registered by id, messages
// dispatched synchronously, with a per-pair block list to simulate crashes
// and partitions deterministically.
type fleet struct {
	agents  map[types.ServerID]*Agent
	blocked map[[2]types.ServerID]bool
	down    map[types.ServerID]bool
}

func newFleet() *fleet {
	return &fleet{
		agents:  make(map[types.ServerID]*Agent),
		blocked: make(map[[2]types.ServerID]bool),
		down:    make(map[types.ServerID]bool),
	}
}

func (f *fleet) Register(id types.ServerID, h transport.Handler) {}
func (f *fleet) Unregister(id types.ServerID)                   {}

func (f *fleet) Send(ctx context.Context, from, to types.ServerID, req *transport.Message) (*transport.Message, error) {
	if f.down[to] || f.blocked[[2]types.ServerID{from, to}] {
		return nil, transport.ErrUnreachable
	}
	a, ok := f.agents[to]
	if !ok {
		return nil, transport.ErrUnreachable
	}
	return a.HandleMessage(ctx, req), nil
}

// build starts n manual agents with complete bootstrapped views.
func (f *fleet) build(n int) []*Agent {
	return f.buildWith(n, nil)
}

func (f *fleet) buildWith(n int, mut func(*Config)) []*Agent {
	var boot []Update
	for i := 0; i < n; i++ {
		boot = append(boot, Update{ID: types.ServerID(i), State: StateAlive, Domain: i % 4})
	}
	out := make([]*Agent, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			ID:     types.ServerID(i),
			Domain: i % 4,
			Seed:   int64(1000 + i),
		}
		if mut != nil {
			mut(&cfg)
		}
		a := NewAgent(cfg, f)
		a.Bootstrap(boot)
		f.agents[types.ServerID(i)] = a
		out[i] = a
	}
	return out
}

func tickAll(ctx context.Context, agents []*Agent, f *fleet) {
	for _, a := range agents {
		if !f.down[a.ID()] {
			a.Tick(ctx)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := []Update{
		{ID: 0, State: StateAlive, Incarnation: 0, Domain: 0, Addr: ""},
		{ID: 7, State: StateSuspect, Incarnation: 3, Domain: 2, Addr: "127.0.0.1:9999"},
		{ID: 12, State: StateDead, Incarnation: 18446744073709551615, Domain: 3},
		{ID: 2, State: StateLeft, Incarnation: 9, Domain: 1},
	}
	out, err := DecodeUpdates(EncodeUpdates(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	enc := EncodeUpdates([]Update{{ID: 1, State: StateAlive}})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeUpdates(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[4+8] = 200 // state byte out of range
	if _, err := DecodeUpdates(bad); err == nil {
		t.Fatalf("invalid state decoded without error")
	}
}

func TestGossipDetectsCrash(t *testing.T) {
	ctx := context.Background()
	f := newFleet()
	agents := f.build(6)
	f.down[3] = true

	died := make(map[types.ServerID]bool)
	for _, a := range agents {
		a.cfg.OnEvent = func(ev Event) {
			if ev.Kind == EventDied {
				died[ev.ID] = true
			}
		}
	}
	for round := 0; round < 40; round++ {
		tickAll(ctx, agents, f)
		if died[3] {
			break
		}
	}
	if !died[3] {
		t.Fatalf("crash of server 3 never detected over 40 gossip rounds")
	}
	if died[0] || died[1] || died[2] || died[4] || died[5] {
		t.Fatalf("healthy server declared dead: %v", died)
	}
	// Dissemination: every live agent converges on the death.
	for round := 0; round < 40; round++ {
		tickAll(ctx, agents, f)
	}
	for _, a := range agents {
		if f.down[a.ID()] {
			continue
		}
		if st, ok := a.State(3); !ok || st != StateDead {
			t.Fatalf("agent %d sees server 3 as %v, want dead", a.ID(), st)
		}
	}
}

func TestSuspicionRefutedNotEvicted(t *testing.T) {
	// Asymmetric reachability: server 0 cannot reach server 2 directly or
	// learn of it via proxies briefly; once the partition heals before the
	// suspicion window closes fleet-wide, 2 must end refuted, not dead.
	ctx := context.Background()
	f := newFleet()
	// A wide refutation window: the test asserts the refutation mechanism,
	// not a race between dissemination latency and the deadline.
	agents := f.buildWith(4, func(c *Config) { c.SuspicionTicks = 10 })

	var refuted, diedWrong bool
	for _, a := range agents {
		a.cfg.OnEvent = func(ev Event) {
			if ev.ID == 2 {
				switch ev.Kind {
				case EventRefuted:
					refuted = true
				case EventDied:
					diedWrong = true
				}
			}
		}
	}

	// Block every path to 2 so some agent suspects it...
	for i := 0; i < 4; i++ {
		f.blocked[[2]types.ServerID{types.ServerID(i), 2}] = true
	}
	suspected := func() bool {
		for _, a := range agents {
			if st, ok := a.State(2); ok && st == StateSuspect {
				return true
			}
		}
		return false
	}
	for round := 0; round < 20 && !suspected(); round++ {
		tickAll(ctx, agents, f)
	}
	if !suspected() {
		t.Fatalf("no agent suspected the partitioned server")
	}
	// ... then heal. Server 2's own ticks now deliver gossip again; when it
	// hears the suspicion of itself it bumps its incarnation and refutes.
	for i := 0; i < 4; i++ {
		delete(f.blocked, [2]types.ServerID{types.ServerID(i), 2})
	}
	for round := 0; round < 60; round++ {
		tickAll(ctx, agents, f)
	}
	if diedWrong {
		t.Fatalf("healthy-but-partitioned server was declared dead")
	}
	if !refuted {
		t.Fatalf("suspicion was never refuted after the partition healed")
	}
	for _, a := range agents {
		if st, _ := a.State(2); st != StateAlive {
			t.Fatalf("agent %d still sees server 2 as %v after refutation", a.ID(), st)
		}
	}
	if agents[2].Incarnation() == 0 {
		t.Fatalf("refutation did not bump the suspect's incarnation")
	}
	if agents[2].Stats().Refutations == 0 {
		t.Fatalf("refutation counter not incremented")
	}
}

func TestIndirectProbeClearsTarget(t *testing.T) {
	// 0 cannot reach 1 directly, but proxies can: the indirect probe must
	// keep 1 alive in 0's view.
	ctx := context.Background()
	f := newFleet()
	agents := f.build(4)
	f.blocked[[2]types.ServerID{0, 1}] = true
	for round := 0; round < 40; round++ {
		agents[0].Tick(ctx)
	}
	if st, _ := agents[0].State(1); st == StateDead {
		t.Fatalf("agent 0 declared 1 dead despite working proxy paths")
	}
	if agents[0].Stats().IndirectProbes == 0 {
		t.Fatalf("no indirect probes issued although the direct path is blocked")
	}
}

func TestJoinFleetAnnounce(t *testing.T) {
	ctx := context.Background()
	f := newFleet()
	agents := f.build(3)
	joiner := NewAgent(Config{ID: 9, Domain: 1, Seed: 99}, f)
	f.agents[9] = joiner
	if n := joiner.JoinFleet(ctx, []types.ServerID{0, 1, 2}); n != 3 {
		t.Fatalf("JoinFleet reached %d peers, want 3", n)
	}
	// The pull responses taught the joiner the whole fleet.
	if got := len(joiner.Members()); got != 4 {
		t.Fatalf("joiner knows %d members, want 4", got)
	}
	// And the announce taught the fleet the joiner.
	for _, a := range agents {
		if st, ok := a.State(9); !ok || st != StateAlive {
			t.Fatalf("agent %d does not know the joiner (state %v ok=%v)", a.ID(), st, ok)
		}
	}
}

func TestReplacementOverridesTombstone(t *testing.T) {
	ctx := context.Background()
	f := newFleet()
	agents := f.build(4)
	f.down[1] = true
	for round := 0; round < 60; round++ {
		tickAll(ctx, agents, f)
	}
	if st, _ := agents[0].State(1); st != StateDead {
		t.Fatalf("setup: server 1 not declared dead (state %v)", st)
	}
	// A replacement bootstrapped at incarnation 0 would lose to the
	// tombstone; at tombstone+1 it must win.
	f.down[1] = false
	repl := NewAgent(Config{ID: 1, Domain: 1, Seed: 77, Incarnation: 1}, f)
	f.agents[1] = repl
	repl.JoinFleet(ctx, []types.ServerID{0, 2, 3})
	for round := 0; round < 40; round++ {
		tickAll(ctx, append(agents[:1:1], append([]*Agent{repl}, agents[2:]...)...), f)
	}
	for _, a := range []*Agent{agents[0], agents[2], agents[3]} {
		if st, _ := a.State(1); st != StateAlive {
			t.Fatalf("agent %d sees the replacement as %v, want alive", a.ID(), st)
		}
	}
}

func TestLeaveIsTerminalNotDead(t *testing.T) {
	ctx := context.Background()
	f := newFleet()
	agents := f.build(4)
	var sawDead bool
	for _, a := range agents[1:] {
		a.cfg.OnEvent = func(ev Event) {
			if ev.ID == 0 && ev.Kind == EventDied {
				sawDead = true
			}
		}
	}
	agents[0].Leave(ctx)
	f.down[0] = true
	for round := 0; round < 60; round++ {
		tickAll(ctx, agents, f)
	}
	if sawDead {
		t.Fatalf("voluntary departure was reported as a death")
	}
	for _, a := range agents[1:] {
		if st, _ := a.State(0); st != StateLeft {
			t.Fatalf("agent %d sees the leaver as %v, want left", a.ID(), st)
		}
	}
}

func TestPiggybackBounded(t *testing.T) {
	f := newFleet()
	a := NewAgent(Config{ID: 0, Seed: 1, PiggybackLimit: 4}, f)
	var boot []Update
	for i := 1; i <= 20; i++ {
		boot = append(boot, Update{ID: types.ServerID(i), State: StateAlive})
	}
	a.Bootstrap(boot)
	// Queue 20 updates through Apply (suspects at fresh incarnations).
	var batch []Update
	for i := 1; i <= 20; i++ {
		batch = append(batch, Update{ID: types.ServerID(i), State: StateSuspect, Incarnation: 1})
	}
	a.Apply(EncodeUpdates(batch))
	pig := a.Piggyback()
	got, err := DecodeUpdates(pig)
	if err != nil {
		t.Fatalf("piggyback decode: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("piggyback carried %d updates, want PiggybackLimit=4", len(got))
	}
	// Retransmit budget eventually drains the queue entirely.
	for i := 0; i < 200; i++ {
		a.Piggyback()
	}
	if rest := a.Piggyback(); rest != nil {
		t.Fatalf("queue never drained: still carrying %d bytes", len(rest))
	}
}
