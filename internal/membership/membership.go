// Package membership implements SWIM-style gossip failure detection for the
// staging fleet: every server runs an Agent that periodically direct-probes
// one random peer, falls back to indirect probes through k proxies on
// timeout, and moves peers through an alive → suspect → dead state machine.
// Incarnation numbers let a falsely-suspected server refute the suspicion
// before the fleet evicts it, and every probe piggybacks a bounded batch of
// recent membership updates, so dissemination rides the existing transport
// frames instead of a separate broadcast channel.
//
// Agents are deterministic under test: all randomness comes from a seeded
// generator, and the probe loop is driven by Tick — the background Start
// loop just calls Tick on a timer, while chaos tests call it directly so a
// seeded FaultPlan reproduces the same detection sequence every run.
package membership

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"corec/internal/transport"
	"corec/internal/types"
)

// State is a member's liveness state in the SWIM state machine.
type State uint8

// Member states. Left is terminal (voluntary departure, no recovery needed);
// Dead is what triggers recovery.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
	StateLeft
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return "unknown"
	}
}

// Update is one disseminated membership assertion: "server ID is in State at
// Incarnation". Domain and Addr ride along so joiners learn placement and
// dialing information from gossip alone.
type Update struct {
	ID          types.ServerID
	State       State
	Incarnation uint64
	Domain      int
	Addr        string
}

// EventKind enumerates membership events an Agent reports.
type EventKind int

// Event kinds.
const (
	// EventJoined fires when a previously unknown or dead member turns alive.
	EventJoined EventKind = iota
	// EventSuspected fires on an alive → suspect transition.
	EventSuspected
	// EventRefuted fires when a suspicion is cancelled by a fresher alive
	// assertion (on the suspect itself: when it bumps its incarnation).
	EventRefuted
	// EventDied fires on a transition to dead.
	EventDied
	// EventLeft fires on a voluntary departure.
	EventLeft
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventJoined:
		return "joined"
	case EventSuspected:
		return "suspected"
	case EventRefuted:
		return "refuted"
	case EventDied:
		return "died"
	case EventLeft:
		return "left"
	default:
		return "unknown"
	}
}

// Event is one observed membership transition.
type Event struct {
	Kind        EventKind
	ID          types.ServerID
	Incarnation uint64
	Domain      int
	Addr        string
}

// Config tunes one Agent.
type Config struct {
	// ID is the local server; Domain its failure domain (cabinet); Addr its
	// dialable address on a TCP fabric ("" in-process).
	ID     types.ServerID
	Domain int
	Addr   string
	// Seed drives all agent randomness (probe-target shuffle, proxy choice).
	Seed int64
	// ProbeInterval is the background loop's tick period. Default 25ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each direct or indirect probe RPC. Default 10ms.
	ProbeTimeout time.Duration
	// IndirectProxies is k: how many peers relay an indirect probe after a
	// direct probe fails. Default 2.
	IndirectProxies int
	// SuspicionTicks is how many ticks a suspect has to refute before it is
	// declared dead. Default 3.
	SuspicionTicks int
	// PiggybackLimit caps updates carried per message. Default 8.
	PiggybackLimit int
	// RetransmitMult scales per-update retransmissions: each update rides
	// RetransmitMult * ceil(log2(n+1)) messages. Default 3.
	RetransmitMult int
	// Incarnation seeds the local incarnation number. A replacement for a
	// previously-dead server must start above the dead record's incarnation
	// or its alive assertions lose to the tombstone.
	Incarnation uint64
	// OnEvent, when non-nil, receives membership transitions. Called without
	// internal locks held; may call back into the Agent.
	OnEvent func(Event)
	// OnDrain, when non-nil, handles an operator drain request received over
	// gossip (corec-cli drain). Invoked on its own goroutine.
	OnDrain func()
	// OnJoin, when non-nil, handles an operator scale-out request received
	// over gossip (corec-cli join): the host is asked to admit one fresh
	// server into the fleet. Invoked on its own goroutine.
	OnJoin func()
}

func (c *Config) applyDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 10 * time.Millisecond
	}
	if c.IndirectProxies <= 0 {
		c.IndirectProxies = 2
	}
	if c.SuspicionTicks <= 0 {
		c.SuspicionTicks = 3
	}
	if c.PiggybackLimit <= 0 {
		c.PiggybackLimit = 8
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = 3
	}
}

// Member is one entry in an Agent's membership view.
type Member struct {
	ID          types.ServerID
	State       State
	Incarnation uint64
	Domain      int
	Addr        string
}

// Stats reports an Agent's cumulative detector counters.
type Stats struct {
	// Probes and IndirectProbes count probe RPCs issued.
	Probes         int64
	IndirectProbes int64
	// Suspicions counts alive→suspect transitions observed (local or gossiped).
	Suspicions int64
	// Refutations counts incarnation bumps this agent performed to cancel a
	// suspicion of itself.
	Refutations int64
	// FalsePositives counts suspicions that were later refuted rather than
	// confirmed — each one is a peer we nearly evicted wrongly.
	FalsePositives int64
	// Version is the agent's membership view version (bumped on every
	// accepted update); the cluster ring epoch is derived from these.
	Version uint64
	// Alive/Suspect/Dead/Left are current state counts (including self).
	Alive, Suspect, Dead, Left int
}

type member struct {
	state       State
	incarnation uint64
	domain      int
	addr        string
	deadline    uint64 // tick at which a suspect is declared dead
}

type queued struct {
	u     Update
	sends int
}

// Agent is one server's membership detector. All methods are safe for
// concurrent use; network sends never happen under the internal lock.
type Agent struct {
	cfg Config
	net transport.Network

	mu         sync.Mutex
	rng        *rand.Rand
	members    map[types.ServerID]*member // includes self
	queue      []queued
	probeOrder []types.ServerID
	probeIdx   int
	tick       uint64
	version    uint64
	selfInc    uint64

	probes         int64
	indirect       int64
	suspicions     int64
	refutations    int64
	falsePositives int64

	cancel context.CancelFunc
	done   chan struct{}
}

// NewAgent builds an agent; it knows only itself until Bootstrap or gossip
// teaches it peers.
func NewAgent(cfg Config, net transport.Network) *Agent {
	cfg.applyDefaults()
	a := &Agent{
		cfg:     cfg,
		net:     net,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		members: make(map[types.ServerID]*member),
		selfInc: cfg.Incarnation,
	}
	a.members[cfg.ID] = &member{state: StateAlive, incarnation: cfg.Incarnation, domain: cfg.Domain, addr: cfg.Addr}
	return a
}

// ID returns the local server id.
func (a *Agent) ID() types.ServerID { return a.cfg.ID }

// Incarnation returns the local incarnation number.
func (a *Agent) Incarnation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.selfInc
}

// Version returns the membership view version.
func (a *Agent) Version() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.version
}

// Bootstrap seeds the view with known-alive peers (the initial fleet, or a
// joiner's snapshot) without generating events or gossip traffic.
func (a *Agent) Bootstrap(peers []Update) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, u := range peers {
		if u.ID < 0 || u.ID == a.cfg.ID {
			continue
		}
		if m, ok := a.members[u.ID]; ok {
			// Re-bootstrapping an already-known peer only fills in a missing
			// address (a TCP fleet learns listen addresses as servers come
			// up); state and incarnation stay gossip-owned.
			if m.addr == "" && u.Addr != "" {
				m.addr = u.Addr
			}
			continue
		}
		a.members[u.ID] = &member{state: u.State, incarnation: u.Incarnation, domain: u.Domain, addr: u.Addr}
	}
	a.probeOrder = nil
	a.version++
}

// Members returns the current view sorted by server id.
func (a *Agent) Members() []Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Member, 0, len(a.members))
	for id, m := range a.members {
		out = append(out, Member{ID: id, State: m.state, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// State returns a member's current state.
func (a *Agent) State(id types.ServerID) (State, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.members[id]
	if !ok {
		return StateDead, false
	}
	return m.state, true
}

// Snapshot returns the full view as updates (sorted by id), suitable for
// answering a pull or bootstrapping a joiner.
func (a *Agent) Snapshot() []Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Update, 0, len(a.members))
	for id, m := range a.members {
		out = append(out, Update{ID: id, State: m.state, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns cumulative detector counters and current state counts.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Probes:         a.probes,
		IndirectProbes: a.indirect,
		Suspicions:     a.suspicions,
		Refutations:    a.refutations,
		FalsePositives: a.falsePositives,
		Version:        a.version,
	}
	for _, m := range a.members {
		switch m.state {
		case StateAlive:
			st.Alive++
		case StateSuspect:
			st.Suspect++
		case StateDead:
			st.Dead++
		case StateLeft:
			st.Left++
		}
	}
	return st
}

// Start launches the background probe loop. Stop with Stop.
func (a *Agent) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	a.cancel = cancel
	a.done = make(chan struct{})
	go func() {
		defer close(a.done)
		ticker := time.NewTicker(a.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				a.Tick(ctx)
			}
		}
	}()
}

// Stop terminates the background loop, if running, and waits for it.
func (a *Agent) Stop() {
	if a.cancel != nil {
		a.cancel()
		<-a.done
		a.cancel = nil
	}
}

// Tick runs one protocol round: expire overdue suspicions, then probe one
// peer (direct, falling back to k indirect proxies), suspecting it if every
// path fails. Chaos tests drive Tick directly for determinism.
func (a *Agent) Tick(ctx context.Context) {
	a.mu.Lock()
	a.tick++
	var events []Event
	// Expire suspicions whose refutation window closed, in id order for
	// deterministic event sequences.
	ids := make([]types.ServerID, 0, len(a.members))
	for id := range a.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m := a.members[id]
		if m.state == StateSuspect && a.tick >= m.deadline {
			m.state = StateDead
			a.version++
			a.queueLocked(Update{ID: id, State: StateDead, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
			events = append(events, Event{Kind: EventDied, ID: id, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
		}
	}
	target := a.nextTargetLocked()
	var pig []byte
	var proxies []types.ServerID
	if target >= 0 {
		pig = a.takePiggybackLocked()
		proxies = a.pickProxiesLocked(target)
	}
	a.mu.Unlock()
	a.emit(events)
	if target < 0 {
		return
	}
	if data, ok := a.probe(ctx, target, transport.MsgPing, 0, pig); ok {
		a.Apply(data)
		return
	}
	// Direct probe failed: ask k proxies to probe on our behalf. Any ack —
	// the proxy reached the target — clears the target.
	acked := false
	for _, p := range proxies {
		a.mu.Lock()
		pp := a.takePiggybackLocked()
		a.mu.Unlock()
		a.mu.Lock()
		a.indirect++
		a.mu.Unlock()
		resp, err := a.send(ctx, p, &transport.Message{Kind: transport.MsgPingReq, Num: int64(target), Data: pp})
		if err != nil || resp.Kind != transport.MsgOK {
			continue
		}
		a.Apply(resp.Data)
		if resp.Flag {
			acked = true
			break
		}
	}
	if acked {
		return
	}
	a.suspect(target)
}

// probe sends one ping and applies any piggybacked updates from the
// response. Returns the response payload and success.
func (a *Agent) probe(ctx context.Context, target types.ServerID, kind transport.Kind, num int64, pig []byte) ([]byte, bool) {
	a.mu.Lock()
	a.probes++
	a.mu.Unlock()
	resp, err := a.send(ctx, target, &transport.Message{Kind: kind, Num: num, Data: pig})
	if err != nil || resp.Kind != transport.MsgOK {
		return nil, false
	}
	return resp.Data, true
}

func (a *Agent) send(ctx context.Context, to types.ServerID, req *transport.Message) (*transport.Message, error) {
	sctx, cancel := context.WithTimeout(ctx, a.cfg.ProbeTimeout)
	defer cancel()
	return a.net.Send(sctx, a.cfg.ID, to, req)
}

// nextTargetLocked returns the next probe target in the shuffled round-robin
// order, rebuilding (and reshuffling) the order when exhausted. Returns -1
// when the agent knows no probe-worthy peer.
func (a *Agent) nextTargetLocked() types.ServerID {
	for attempts := 0; attempts < 2; attempts++ {
		for a.probeIdx < len(a.probeOrder) {
			id := a.probeOrder[a.probeIdx]
			a.probeIdx++
			if m, ok := a.members[id]; ok && (m.state == StateAlive || m.state == StateSuspect) {
				return id
			}
		}
		// Rebuild: alive and suspect peers, shuffled with the seeded rng so
		// every peer is probed once per round in random order (SWIM's
		// round-robin randomization bounds worst-case detection time).
		a.probeOrder = a.probeOrder[:0]
		ids := make([]types.ServerID, 0, len(a.members))
		for id, m := range a.members {
			if id == a.cfg.ID || (m.state != StateAlive && m.state != StateSuspect) {
				continue
			}
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		a.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		a.probeOrder = ids
		a.probeIdx = 0
		if len(ids) == 0 {
			return -1
		}
	}
	return -1
}

// pickProxiesLocked selects up to k alive peers other than self and target.
func (a *Agent) pickProxiesLocked(target types.ServerID) []types.ServerID {
	var cands []types.ServerID
	for id, m := range a.members {
		if id == a.cfg.ID || id == target || m.state != StateAlive {
			continue
		}
		cands = append(cands, id)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	a.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > a.cfg.IndirectProxies {
		cands = cands[:a.cfg.IndirectProxies]
	}
	return cands
}

// suspect marks a peer suspected after all probe paths failed.
func (a *Agent) suspect(target types.ServerID) {
	a.mu.Lock()
	var events []Event
	if m, ok := a.members[target]; ok && m.state == StateAlive {
		m.state = StateSuspect
		m.deadline = a.tick + uint64(a.cfg.SuspicionTicks)
		a.suspicions++
		a.version++
		a.queueLocked(Update{ID: target, State: StateSuspect, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
		events = append(events, Event{Kind: EventSuspected, ID: target, Incarnation: m.incarnation, Domain: m.domain, Addr: m.addr})
	}
	a.mu.Unlock()
	a.emit(events)
}

// Apply decodes and applies a batch of gossiped updates (piggybacked on any
// message), emitting events for accepted transitions.
func (a *Agent) Apply(data []byte) {
	if len(data) == 0 {
		return
	}
	updates, err := DecodeUpdates(data)
	if err != nil {
		return
	}
	a.mu.Lock()
	var events []Event
	for _, u := range updates {
		events = append(events, a.applyLocked(u)...)
	}
	a.mu.Unlock()
	a.emit(events)
}

// applyLocked merges one update under SWIM precedence rules and returns any
// resulting events. Accepted updates are re-queued for further
// dissemination.
func (a *Agent) applyLocked(u Update) []Event {
	if u.ID < 0 {
		return nil
	}
	if u.ID == a.cfg.ID {
		// Someone thinks we are suspect or dead. Refute: bump our
		// incarnation past theirs and gossip a fresher alive assertion.
		if (u.State == StateSuspect || u.State == StateDead) && u.Incarnation >= a.selfInc {
			a.selfInc = u.Incarnation + 1
			self := a.members[a.cfg.ID]
			self.incarnation = a.selfInc
			self.state = StateAlive
			a.refutations++
			a.version++
			a.queueLocked(Update{ID: a.cfg.ID, State: StateAlive, Incarnation: a.selfInc, Domain: a.cfg.Domain, Addr: a.cfg.Addr})
			return []Event{{Kind: EventRefuted, ID: a.cfg.ID, Incarnation: a.selfInc, Domain: a.cfg.Domain, Addr: a.cfg.Addr}}
		}
		return nil
	}
	m, known := a.members[u.ID]
	if !known {
		a.members[u.ID] = &member{state: u.State, incarnation: u.Incarnation, domain: u.Domain, addr: u.Addr}
		a.probeOrder = nil // fold the newcomer into the probe rotation
		a.version++
		a.queueLocked(u)
		switch u.State {
		case StateAlive:
			return []Event{{Kind: EventJoined, ID: u.ID, Incarnation: u.Incarnation, Domain: u.Domain, Addr: u.Addr}}
		case StateDead:
			return []Event{{Kind: EventDied, ID: u.ID, Incarnation: u.Incarnation, Domain: u.Domain, Addr: u.Addr}}
		case StateLeft:
			return []Event{{Kind: EventLeft, ID: u.ID, Incarnation: u.Incarnation, Domain: u.Domain, Addr: u.Addr}}
		}
		return nil
	}
	switch u.State {
	case StateAlive:
		// Alive{inc} overrides any state with a strictly older incarnation —
		// including dead/left, which is how a replacement or rejoining server
		// (bootstrapped above the tombstone's incarnation) re-enters.
		if u.Incarnation <= m.incarnation {
			return nil
		}
		prev := m.state
		m.state = StateAlive
		m.incarnation = u.Incarnation
		m.domain = u.Domain
		if u.Addr != "" {
			m.addr = u.Addr
		}
		a.version++
		a.queueLocked(u)
		switch prev {
		case StateSuspect:
			// The suspicion was wrong: the member proved itself fresher.
			a.falsePositives++
			return []Event{{Kind: EventRefuted, ID: u.ID, Incarnation: u.Incarnation, Domain: u.Domain, Addr: u.Addr}}
		case StateDead, StateLeft:
			a.probeOrder = nil
			return []Event{{Kind: EventJoined, ID: u.ID, Incarnation: u.Incarnation, Domain: u.Domain, Addr: u.Addr}}
		default:
			return nil
		}
	case StateSuspect:
		// Suspect{inc} overrides alive{inc' <= inc} and refreshes an existing
		// suspicion's incarnation.
		if m.state == StateAlive && u.Incarnation >= m.incarnation {
			m.state = StateSuspect
			m.incarnation = u.Incarnation
			m.deadline = a.tick + uint64(a.cfg.SuspicionTicks)
			a.suspicions++
			a.version++
			a.queueLocked(u)
			return []Event{{Kind: EventSuspected, ID: u.ID, Incarnation: u.Incarnation, Domain: m.domain, Addr: m.addr}}
		}
		if m.state == StateSuspect && u.Incarnation > m.incarnation {
			m.incarnation = u.Incarnation
			a.queueLocked(u)
		}
		return nil
	case StateDead, StateLeft:
		// Dead/left override alive and suspect at the same or newer
		// incarnation; a fresher alive assertion can still revive later.
		if (m.state == StateDead || m.state == StateLeft) || u.Incarnation < m.incarnation {
			return nil
		}
		m.state = u.State
		m.incarnation = u.Incarnation
		a.version++
		a.queueLocked(u)
		kind := EventDied
		if u.State == StateLeft {
			kind = EventLeft
		}
		return []Event{{Kind: kind, ID: u.ID, Incarnation: u.Incarnation, Domain: m.domain, Addr: m.addr}}
	}
	return nil
}

// queueLocked enqueues an update for piggybacked dissemination, replacing
// any queued update about the same member (the newest assertion wins).
func (a *Agent) queueLocked(u Update) {
	for i := range a.queue {
		if a.queue[i].u.ID == u.ID {
			a.queue[i] = queued{u: u}
			return
		}
	}
	a.queue = append(a.queue, queued{u: u})
}

// maxSendsLocked is the per-update retransmit budget:
// RetransmitMult * ceil(log2(n+1)), SWIM's dissemination bound.
func (a *Agent) maxSendsLocked() int {
	n := len(a.members)
	lg := 0
	for v := n + 1; v > 1; v >>= 1 {
		lg++
	}
	if lg < 1 {
		lg = 1
	}
	return a.cfg.RetransmitMult * lg
}

// takePiggybackLocked selects up to PiggybackLimit queued updates (fewest
// sends first, so fresh news spreads fastest), charges their send counts,
// and drops exhausted entries. Returns the encoded batch, or nil.
func (a *Agent) takePiggybackLocked() []byte {
	if len(a.queue) == 0 {
		return nil
	}
	sort.SliceStable(a.queue, func(i, j int) bool {
		if a.queue[i].sends != a.queue[j].sends {
			return a.queue[i].sends < a.queue[j].sends
		}
		return a.queue[i].u.ID < a.queue[j].u.ID
	})
	n := len(a.queue)
	if n > a.cfg.PiggybackLimit {
		n = a.cfg.PiggybackLimit
	}
	batch := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, a.queue[i].u)
		a.queue[i].sends++
	}
	max := a.maxSendsLocked()
	kept := a.queue[:0]
	for _, q := range a.queue {
		if q.sends < max {
			kept = append(kept, q)
		}
	}
	a.queue = kept
	if len(batch) == 0 {
		return nil
	}
	return EncodeUpdates(batch)
}

// Piggyback returns an encoded batch of pending updates for embedding in an
// outgoing message (charges retransmit counts).
func (a *Agent) Piggyback() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.takePiggybackLocked()
}

// HandleMessage processes one membership-plane request (MsgPing, MsgPingReq,
// MsgGossip) and returns the response. The server's dispatch loop routes
// these kinds here when an agent is attached.
func (a *Agent) HandleMessage(ctx context.Context, req *transport.Message) *transport.Message {
	switch req.Kind {
	case transport.MsgPing:
		a.Apply(req.Data)
		return &transport.Message{Kind: transport.MsgOK, Data: a.Piggyback(), Num: int64(a.Version())}
	case transport.MsgPingReq:
		// Probe the target on the requester's behalf; Flag reports whether
		// the target acked (our view of it, not the requester's).
		a.Apply(req.Data)
		target := types.ServerID(req.Num)
		pig := a.Piggyback()
		data, ok := a.probe(ctx, target, transport.MsgPing, 0, pig)
		if ok {
			a.Apply(data)
		}
		return &transport.Message{Kind: transport.MsgOK, Flag: ok, Data: a.Piggyback()}
	case transport.MsgGossip:
		if req.Key == "drain" {
			// Operator control plane: fence and hand off (corec-cli drain).
			if cb := a.cfg.OnDrain; cb != nil {
				go cb()
			}
			return transport.Ok()
		}
		if req.Key == "join" {
			// Operator control plane: admit one fresh server (corec-cli
			// join). Async like drain — the newcomer announces itself over
			// gossip once up, so the ack only means "accepted".
			if cb := a.cfg.OnJoin; cb != nil {
				go cb()
				return transport.Ok()
			}
			return transport.Errf("membership: host cannot scale out")
		}
		a.Apply(req.Data)
		if req.Flag {
			// Pull: return the full snapshot (anti-entropy sync for joiners
			// and the CLI members view).
			return &transport.Message{Kind: transport.MsgOK, Data: EncodeUpdates(a.Snapshot()), Num: int64(a.Version())}
		}
		return &transport.Message{Kind: transport.MsgOK, Data: a.Piggyback(), Num: int64(a.Version())}
	default:
		return transport.Errf("membership: unexpected kind %v", req.Kind)
	}
}

// JoinFleet announces this agent to the given peers and pulls their views:
// the join path for a server entering an established fleet. Best effort —
// one reachable peer suffices, gossip spreads the rest.
func (a *Agent) JoinFleet(ctx context.Context, peers []types.ServerID) int {
	a.mu.Lock()
	self := Update{ID: a.cfg.ID, State: StateAlive, Incarnation: a.selfInc, Domain: a.cfg.Domain, Addr: a.cfg.Addr}
	a.queueLocked(self)
	a.mu.Unlock()
	reached := 0
	for _, p := range peers {
		if p == a.cfg.ID {
			continue
		}
		resp, err := a.send(ctx, p, &transport.Message{
			Kind: transport.MsgGossip,
			Flag: true,
			Data: EncodeUpdates([]Update{self}),
		})
		if err != nil || resp.Kind != transport.MsgOK {
			continue
		}
		a.Apply(resp.Data)
		reached++
	}
	return reached
}

// Leave broadcasts a voluntary departure (terminal: peers mark us left, no
// recovery is triggered). Called at the end of a drain.
func (a *Agent) Leave(ctx context.Context) {
	a.mu.Lock()
	a.selfInc++
	self := a.members[a.cfg.ID]
	self.incarnation = a.selfInc
	self.state = StateLeft
	left := Update{ID: a.cfg.ID, State: StateLeft, Incarnation: a.selfInc, Domain: a.cfg.Domain, Addr: a.cfg.Addr}
	var peers []types.ServerID
	for id, m := range a.members {
		if id != a.cfg.ID && m.state == StateAlive {
			peers = append(peers, id)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	a.mu.Unlock()
	data := EncodeUpdates([]Update{left})
	for _, p := range peers {
		// Best effort: unreachable peers learn of the departure via gossip
		// from the ones we did reach.
		_, _ = a.send(ctx, p, &transport.Message{Kind: transport.MsgGossip, Data: data})
	}
}

func (a *Agent) emit(events []Event) {
	if a.cfg.OnEvent == nil {
		return
	}
	for _, ev := range events {
		a.cfg.OnEvent(ev)
	}
}
