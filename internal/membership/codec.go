package membership

import (
	"encoding/binary"
	"fmt"

	"corec/internal/types"
)

// Updates ride inside Message.Data with their own little-endian codec (the
// transport's superset struct stays untouched): a u32 count, then per update
// i64 id, u8 state, u64 incarnation, i64 domain, and a u16-length-prefixed
// address.

// EncodeUpdates serializes a batch of updates.
func EncodeUpdates(updates []Update) []byte {
	size := 4
	for i := range updates {
		size += 8 + 1 + 8 + 8 + 2 + len(updates[i].Addr)
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(updates)))
	for i := range updates {
		u := &updates[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(u.ID)))
		buf = append(buf, byte(u.State))
		buf = binary.LittleEndian.AppendUint64(buf, u.Incarnation)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(u.Domain)))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Addr)))
		buf = append(buf, u.Addr...)
	}
	return buf
}

// DecodeUpdates parses a batch of updates, validating lengths strictly so a
// corrupt or truncated payload fails instead of yielding garbage.
func DecodeUpdates(data []byte) ([]Update, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("membership: update batch too short (%d bytes)", len(data))
	}
	count := binary.LittleEndian.Uint32(data)
	off := 4
	const fixed = 8 + 1 + 8 + 8 + 2
	if uint64(count)*fixed > uint64(len(data)) {
		return nil, fmt.Errorf("membership: update count %d exceeds payload", count)
	}
	out := make([]Update, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+fixed > len(data) {
			return nil, fmt.Errorf("membership: truncated update %d", i)
		}
		var u Update
		u.ID = types.ServerID(int64(binary.LittleEndian.Uint64(data[off:])))
		off += 8
		s := data[off]
		off++
		if s > byte(StateLeft) {
			return nil, fmt.Errorf("membership: invalid state %d in update %d", s, i)
		}
		u.State = State(s)
		u.Incarnation = binary.LittleEndian.Uint64(data[off:])
		off += 8
		u.Domain = int(int64(binary.LittleEndian.Uint64(data[off:])))
		off += 8
		alen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+alen > len(data) {
			return nil, fmt.Errorf("membership: truncated address in update %d", i)
		}
		u.Addr = string(data[off : off+alen])
		off += alen
		out = append(out, u)
	}
	return out, nil
}
