package checkpoint

import (
	"bytes"
	"testing"
	"time"

	"corec/internal/simnet"
)

type fakeSnap struct{ streams [][]byte }

func (f *fakeSnap) ServerBytes() [][]byte { return f.streams }

func fastPFS() simnet.PFSModel {
	return simnet.PFSModel{OpenLatency: time.Millisecond, BytesPerSecond: 1 << 30}
}

func TestCheckpointRestartRoundTrip(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeSnap{streams: [][]byte{[]byte("server0"), []byte("server1-data")}}
	d := cp.Checkpoint(src)
	if d <= 0 {
		t.Fatal("checkpoint took no modelled time")
	}
	// Mutate the source; restart must return the snapshot, not the mutation.
	src.streams[0] = []byte("corrupted")
	rd, restored, err := cp.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rd <= 0 {
		t.Fatal("restart took no modelled time")
	}
	if !bytes.Equal(restored[0], []byte("server0")) || !bytes.Equal(restored[1], []byte("server1-data")) {
		t.Fatalf("restored = %q", restored)
	}
}

func TestRestartWithoutCheckpointFails(t *testing.T) {
	cp := New(fastPFS())
	if _, _, err := cp.Restart(); err == nil {
		t.Fatal("restart without checkpoint succeeded")
	}
}

func TestStatsAccumulate(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeSnap{streams: [][]byte{make([]byte, 1000), make([]byte, 500)}}
	cp.Checkpoint(src)
	cp.Checkpoint(src)
	count, bytesWritten, total := cp.Stats()
	if count != 2 || bytesWritten != 3000 {
		t.Fatalf("count=%d bytes=%d", count, bytesWritten)
	}
	if total <= 0 {
		t.Fatal("no cumulative time")
	}
}

func TestCheckpointCostGrowsWithData(t *testing.T) {
	pfs := simnet.PFSModel{BytesPerSecond: 1 << 20} // 1 MiB/s: visible cost
	cp := New(pfs)
	small := cp.Checkpoint(&fakeSnap{streams: [][]byte{make([]byte, 10_000)}})
	large := cp.Checkpoint(&fakeSnap{streams: [][]byte{make([]byte, 100_000)}})
	if large < 5*small {
		t.Fatalf("10x data gave %v vs %v; cost not proportional", large, small)
	}
}

func TestRunnerPeriodic(t *testing.T) {
	cp := New(fastPFS())
	r := NewRunner(cp, 4*time.Second)
	src := &fakeSnap{streams: [][]byte{[]byte("x")}}
	if d := r.Tick(time.Second, src); d != 0 {
		t.Fatal("checkpoint fired before period")
	}
	if d := r.Tick(4*time.Second, src); d == 0 {
		t.Fatal("checkpoint did not fire at period")
	}
	if d := r.Tick(5*time.Second, src); d != 0 {
		t.Fatal("checkpoint re-fired within period")
	}
	if d := r.Tick(8*time.Second, src); d == 0 {
		t.Fatal("second period missed")
	}
	count, _, _ := cp.Stats()
	if count != 2 {
		t.Fatalf("checkpoints = %d, want 2", count)
	}
}
