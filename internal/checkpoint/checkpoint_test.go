package checkpoint

import (
	"bytes"
	"testing"
	"time"

	"corec/internal/simnet"
)

type fakeSnap struct{ streams [][]byte }

func (f *fakeSnap) ServerBytes() [][]byte { return f.streams }

func fastPFS() simnet.PFSModel {
	return simnet.PFSModel{OpenLatency: time.Millisecond, BytesPerSecond: 1 << 30}
}

func TestCheckpointRestartRoundTrip(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeSnap{streams: [][]byte{[]byte("server0"), []byte("server1-data")}}
	d := cp.Checkpoint(src)
	if d <= 0 {
		t.Fatal("checkpoint took no modelled time")
	}
	// Mutate the source; restart must return the snapshot, not the mutation.
	src.streams[0] = []byte("corrupted")
	rd, restored, err := cp.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if rd <= 0 {
		t.Fatal("restart took no modelled time")
	}
	if !bytes.Equal(restored[0], []byte("server0")) || !bytes.Equal(restored[1], []byte("server1-data")) {
		t.Fatalf("restored = %q", restored)
	}
}

func TestRestartWithoutCheckpointFails(t *testing.T) {
	cp := New(fastPFS())
	if _, _, err := cp.Restart(); err == nil {
		t.Fatal("restart without checkpoint succeeded")
	}
}

func TestStatsAccumulate(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeSnap{streams: [][]byte{make([]byte, 1000), make([]byte, 500)}}
	cp.Checkpoint(src)
	cp.Checkpoint(src)
	count, bytesWritten, total := cp.Stats()
	if count != 2 || bytesWritten != 3000 {
		t.Fatalf("count=%d bytes=%d", count, bytesWritten)
	}
	if total <= 0 {
		t.Fatal("no cumulative time")
	}
}

func TestCheckpointCostGrowsWithData(t *testing.T) {
	pfs := simnet.PFSModel{BytesPerSecond: 1 << 20} // 1 MiB/s: visible cost
	cp := New(pfs)
	small := cp.Checkpoint(&fakeSnap{streams: [][]byte{make([]byte, 10_000)}})
	large := cp.Checkpoint(&fakeSnap{streams: [][]byte{make([]byte, 100_000)}})
	if large < 5*small {
		t.Fatalf("10x data gave %v vs %v; cost not proportional", large, small)
	}
}

// fakeIncSnap implements IncrementalSnapshotter over explicit marks.
type fakeIncSnap struct {
	streams [][]byte
	marks   []Mark
	// serialized counts how many streams each DirtyServerBytes call
	// actually produced, for asserting clean servers cost nothing.
	serialized int
}

func (f *fakeIncSnap) ServerBytes() [][]byte { return f.streams }

func (f *fakeIncSnap) DirtyServerBytes(prev []Mark) ([][]byte, []Mark) {
	prevSeq := make(map[uint64]uint64, len(prev))
	for _, m := range prev {
		prevSeq[m.Incarnation] = m.Seq
	}
	out := make([][]byte, len(f.streams))
	f.serialized = 0
	for i, s := range f.streams {
		m := f.marks[i]
		if seq, ok := prevSeq[m.Incarnation]; ok && seq == m.Seq {
			continue
		}
		out[i] = s
		f.serialized++
	}
	return out, append([]Mark(nil), f.marks...)
}

func TestIncrementalSkipsCleanServers(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeIncSnap{
		streams: [][]byte{[]byte("server0-aaaa"), []byte("server1-bbbb")},
		marks:   []Mark{{Incarnation: 1, Seq: 5}, {Incarnation: 2, Seq: 9}},
	}
	cp.Checkpoint(src)
	if src.serialized != 2 {
		t.Fatalf("first checkpoint serialized %d streams, want 2", src.serialized)
	}
	_, bytesAfterFirst, _ := cp.Stats()
	if bytesAfterFirst != 24 {
		t.Fatalf("first checkpoint wrote %d bytes, want 24", bytesAfterFirst)
	}

	// No mutations: the second checkpoint writes zero bytes.
	cp.Checkpoint(src)
	if src.serialized != 0 {
		t.Fatalf("quiescent checkpoint serialized %d streams, want 0", src.serialized)
	}
	count, bytesAfterSecond, _ := cp.Stats()
	if count != 2 || bytesAfterSecond != bytesAfterFirst {
		t.Fatalf("quiescent checkpoint wrote %d bytes (was %d)", bytesAfterSecond, bytesAfterFirst)
	}
	if cp.SkippedStreams() != 2 {
		t.Fatalf("skipped = %d, want 2", cp.SkippedStreams())
	}

	// One server mutates; only it is rewritten, and restart still returns
	// both streams — the clean one carried forward from the first capture.
	src.streams[1] = []byte("server1-cccc")
	src.marks[1].Seq++
	cp.Checkpoint(src)
	if src.serialized != 1 {
		t.Fatalf("dirty checkpoint serialized %d streams, want 1", src.serialized)
	}
	_, bytesAfterThird, _ := cp.Stats()
	if got := bytesAfterThird - bytesAfterSecond; got != 12 {
		t.Fatalf("dirty checkpoint wrote %d bytes, want 12", got)
	}
	_, restored, err := cp.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored[0], []byte("server0-aaaa")) || !bytes.Equal(restored[1], []byte("server1-cccc")) {
		t.Fatalf("restored = %q", restored)
	}
}

// TestIncrementalReplacementRewrites pins the incarnation rule: a replaced
// server (fresh incarnation, even with the same seq) must re-serialize.
func TestIncrementalReplacementRewrites(t *testing.T) {
	cp := New(fastPFS())
	src := &fakeIncSnap{
		streams: [][]byte{[]byte("gen1")},
		marks:   []Mark{{Incarnation: 7, Seq: 0}},
	}
	cp.Checkpoint(src)
	src.streams[0] = []byte("gen2")
	src.marks[0] = Mark{Incarnation: 8, Seq: 0}
	cp.Checkpoint(src)
	if src.serialized != 1 {
		t.Fatal("replacement server's stream was elided")
	}
	_, restored, err := cp.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored[0], []byte("gen2")) {
		t.Fatalf("restored = %q", restored[0])
	}
}

func TestRunnerPeriodic(t *testing.T) {
	cp := New(fastPFS())
	r := NewRunner(cp, 4*time.Second)
	src := &fakeSnap{streams: [][]byte{[]byte("x")}}
	if d := r.Tick(time.Second, src); d != 0 {
		t.Fatal("checkpoint fired before period")
	}
	if d := r.Tick(4*time.Second, src); d == 0 {
		t.Fatal("checkpoint did not fire at period")
	}
	if d := r.Tick(5*time.Second, src); d != 0 {
		t.Fatal("checkpoint re-fired within period")
	}
	if d := r.Tick(8*time.Second, src); d == 0 {
		t.Fatal("second period missed")
	}
	count, _, _ := cp.Stats()
	if count != 2 {
		t.Fatalf("checkpoints = %d, want 2", count)
	}
}
