// Package checkpoint implements the Checkpoint/Restart baseline the paper
// measures in Figure 2: the staged data of every staging server is
// periodically serialized to a (simulated) parallel file system, and a
// failure forces a global restart of the staging service from the most
// recent checkpoint.
//
// The PFS is modelled by simnet.PFSModel: per-checkpoint open latency plus
// an aggregate bandwidth shared by concurrent writers. The staged bytes are
// actually serialized (so CPU cost is real); only the storage device is
// synthetic.
package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"corec/internal/simnet"
)

// Snapshotter exposes the staged bytes per server; *corec.Cluster adapts
// to it in the harness.
type Snapshotter interface {
	// ServerBytes returns the serialized staged data per live server.
	ServerBytes() [][]byte
}

// Mark identifies one server stream and its change sequence: Incarnation
// pins the server instance (a replacement server gets a fresh one) and Seq
// counts payload mutations it has applied. Two equal marks mean the
// server's staged data cannot have changed between them.
type Mark struct {
	Incarnation uint64
	Seq         uint64
}

// IncrementalSnapshotter is implemented by sources that can tell which
// servers changed since a previous capture and serialize only those —
// *corec.Cluster implements it over per-server mutation counters. Sources
// that only implement Snapshotter get full captures every time.
type IncrementalSnapshotter interface {
	Snapshotter
	// DirtyServerBytes serializes the staged data of servers whose mark
	// differs from every entry of prev; a server whose (incarnation, seq)
	// pair appears in prev yields a nil stream instead. Returns the streams
	// and the marks they were captured at, index-aligned.
	DirtyServerBytes(prev []Mark) ([][]byte, []Mark)
}

// Checkpointer periodically captures all staged data to the simulated PFS.
type Checkpointer struct {
	pfs simnet.PFSModel

	mu           sync.Mutex
	checkpoints  int
	totalBytes   int64
	lastSnapshot [][]byte
	lastMarks    []Mark // per-stream marks of lastSnapshot (incremental sources)
	skipped      int64  // clean server streams elided across all checkpoints
	totalTime    time.Duration
}

// New builds a checkpointer over the given PFS model.
func New(pfs simnet.PFSModel) *Checkpointer {
	return &Checkpointer{pfs: pfs}
}

// Checkpoint captures the current staged data. The call blocks for the
// modelled PFS write time of the largest per-server stream (servers write
// concurrently, sharing aggregate bandwidth), mirroring a blocking
// coordinated checkpoint of the staging service.
//
// When the source implements IncrementalSnapshotter, only servers whose
// mark moved since the previous checkpoint serialize and pay PFS time;
// clean servers' streams are carried over from the last snapshot, so a
// quiescent service checkpoints in (near) zero modelled time and bytes.
func (c *Checkpointer) Checkpoint(src Snapshotter) time.Duration {
	if inc, ok := src.(IncrementalSnapshotter); ok {
		return c.checkpointIncremental(inc)
	}
	streams := src.ServerBytes()
	writers := len(streams)
	var total int64
	var maxStream int
	for _, s := range streams {
		total += int64(len(s))
		if len(s) > maxStream {
			maxStream = len(s)
		}
	}
	d := c.pfs.WriteDelay(maxStream, writers)
	time.Sleep(d)

	c.mu.Lock()
	c.checkpoints++
	c.totalBytes += total
	c.lastSnapshot = make([][]byte, len(streams))
	for i, s := range streams {
		c.lastSnapshot[i] = append([]byte(nil), s...)
	}
	c.lastMarks = nil
	c.totalTime += d
	c.mu.Unlock()
	return d
}

// checkpointIncremental captures only dirty streams, merging clean servers'
// bytes forward from the previous snapshot by incarnation.
func (c *Checkpointer) checkpointIncremental(src IncrementalSnapshotter) time.Duration {
	c.mu.Lock()
	prevMarks := append([]Mark(nil), c.lastMarks...)
	c.mu.Unlock()
	streams, marks := src.DirtyServerBytes(prevMarks)

	// Only the dirty streams hit the PFS; clean ones were already there.
	writers := 0
	var written int64
	var maxStream int
	for _, s := range streams {
		if s == nil {
			continue
		}
		writers++
		written += int64(len(s))
		if len(s) > maxStream {
			maxStream = len(s)
		}
	}
	var d time.Duration
	if writers > 0 {
		d = c.pfs.WriteDelay(maxStream, writers)
		time.Sleep(d)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// Index the previous snapshot by incarnation so clean streams can be
	// carried forward even if the fleet's ordering shifted.
	prevByInc := make(map[uint64][]byte, len(c.lastMarks))
	for i, m := range c.lastMarks {
		if i < len(c.lastSnapshot) {
			prevByInc[m.Incarnation] = c.lastSnapshot[i]
		}
	}
	snap := make([][]byte, len(streams))
	for i, s := range streams {
		if s != nil {
			snap[i] = append([]byte(nil), s...)
			continue
		}
		c.skipped++
		snap[i] = prevByInc[marks[i].Incarnation]
	}
	c.checkpoints++
	c.totalBytes += written
	c.lastSnapshot = snap
	c.lastMarks = append([]Mark(nil), marks...)
	c.totalTime += d
	return d
}

// Restart models a global restart of the staging servers from the last
// checkpoint: every server reads its stream back from the PFS. Returns the
// modelled restart time and the restored streams; an error when no
// checkpoint exists.
func (c *Checkpointer) Restart() (time.Duration, [][]byte, error) {
	c.mu.Lock()
	snap := c.lastSnapshot
	c.mu.Unlock()
	if snap == nil {
		return 0, nil, fmt.Errorf("checkpoint: no checkpoint taken yet")
	}
	var maxStream int
	for _, s := range snap {
		if len(s) > maxStream {
			maxStream = len(s)
		}
	}
	d := c.pfs.ReadDelay(maxStream, len(snap))
	time.Sleep(d)
	restored := make([][]byte, len(snap))
	for i, s := range snap {
		restored[i] = append([]byte(nil), s...)
	}
	c.mu.Lock()
	c.totalTime += d
	c.mu.Unlock()
	return d, restored, nil
}

// Stats reports checkpoints taken, total bytes written, and cumulative
// modelled PFS time. With an incremental source, bytes counts only what
// was actually (re)written — clean streams carried forward are free.
func (c *Checkpointer) Stats() (count int, bytes int64, total time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpoints, c.totalBytes, c.totalTime
}

// SkippedStreams reports how many per-server streams were elided as clean
// across all incremental checkpoints.
func (c *Checkpointer) SkippedStreams() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// Runner drives periodic checkpointing alongside a workload: call Tick
// with the elapsed workflow time and it checkpoints when the period has
// passed (the paper checkpoints every 4 seconds, which yields 12-13
// checkpoints per 20-step run).
type Runner struct {
	cp       *Checkpointer
	period   time.Duration
	lastTime time.Duration
	// MaxCheckpoints caps the number of checkpoints (0 = unlimited). The
	// harness sets it to the paper's cadence so slow PFS models do not
	// self-feed into ever more checkpoints.
	MaxCheckpoints int
	fired          int
}

// NewRunner builds a periodic runner.
func NewRunner(cp *Checkpointer, period time.Duration) *Runner {
	return &Runner{cp: cp, period: period}
}

// Tick checkpoints when a full period elapsed since the previous
// checkpoint. Returns the checkpoint duration (zero if none fired).
func (r *Runner) Tick(elapsed time.Duration, src Snapshotter) time.Duration {
	if r.MaxCheckpoints > 0 && r.fired >= r.MaxCheckpoints {
		return 0
	}
	if elapsed-r.lastTime < r.period {
		return 0
	}
	r.lastTime = elapsed
	r.fired++
	return r.cp.Checkpoint(src)
}
