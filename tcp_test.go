package corec

import (
	"bytes"
	"context"
	"testing"
)

// TestTCPClusterEndToEnd runs a full staging cluster over real TCP
// listeners (the corec-server deployment path) and exercises put/get,
// failure and degraded reads across the loopback fabric.
func TestTCPClusterEndToEnd(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Transport = "tcp"
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	addrs := cluster.ServerAddrs()
	if len(addrs) != 8 {
		t.Fatalf("got %d server addresses, want 8", len(addrs))
	}

	client := cluster.NewClient()
	ctx := context.Background()
	box := Box3D(0, 0, 0, 8, 8, 8)
	data := regionData(t, box, 8, 71)
	if err := client.Put(ctx, "temp", box, 1, data); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, "temp", box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP round trip corrupted data")
	}

	// Kill the primary over TCP and read through the degraded path.
	metas, err := client.Query(ctx, "temp", box)
	if err != nil || len(metas) != 1 {
		t.Fatalf("query: %v (%d metas)", err, len(metas))
	}
	cluster.Kill(metas[0].Primary)
	got, err = client.Get(ctx, "temp", box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP degraded read corrupted data")
	}
}

// TestTCPClusterMuxEndToEnd runs the same full-cluster paths over the
// multiplexed transport: pipelined connections, pooled zero-copy frames,
// and request-ID correlation, including a primary kill and degraded read.
// It also checks that FabricStatus surfaces the transport gauges.
func TestTCPClusterMuxEndToEnd(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Transport = "tcp"
	cfg.MuxConnsPerPeer = 2
	cfg.MaxInFlight = 16
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient()
	ctx := context.Background()
	box := Box3D(0, 0, 0, 8, 8, 8)
	data := regionData(t, box, 8, 37)
	if err := client.Put(ctx, "temp", box, 1, data); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, "temp", box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mux round trip corrupted data")
	}

	st := cluster.FabricStatus()
	ts := st.Transport
	if ts.MuxConnsPerPeer != 2 || ts.MaxInFlight != 16 {
		t.Fatalf("transport status knobs = (%d, %d), want (2, 16)", ts.MuxConnsPerPeer, ts.MaxInFlight)
	}
	if ts.ActiveMuxConns == 0 {
		t.Fatal("no active multiplexed connections after staging traffic")
	}
	if ts.PoolHits+ts.PoolMisses == 0 {
		t.Fatal("frame-buffer pool never used on the mux path")
	}

	metas, err := client.Query(ctx, "temp", box)
	if err != nil || len(metas) != 1 {
		t.Fatalf("query: %v (%d metas)", err, len(metas))
	}
	cluster.Kill(metas[0].Primary)
	got, err = client.Get(ctx, "temp", box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mux degraded read corrupted data")
	}
}

// TestRemoteClusterClient connects a separate client-side fabric to a
// TCP-hosted service via its address map — the corec-cli path, covering
// cross-process access without a second process.
func TestRemoteClusterClient(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Transport = "tcp"
	host, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	remoteCfg := DefaultConfig(8)
	remoteCfg.ElemSize = 1
	remote, err := NewRemoteCluster(remoteCfg, host.ServerAddrs())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	client := remote.NewClient()
	ctx := context.Background()
	payload := []byte("hello staging over tcp")
	box := Box{Lo: []int64{100}, Hi: []int64{100 + int64(len(payload))}}
	if err := client.Put(ctx, "demo", box, 1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(ctx, "demo", box, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("remote round trip = %q", got)
	}
	metas, err := client.Query(ctx, "demo", Box{})
	if err != nil || len(metas) != 1 {
		t.Fatalf("remote query: %v (%d metas)", err, len(metas))
	}
}

// TestRemoteClusterElasticRing is the cross-process elastic regression:
// a remote handle with Membership set bootstraps its placement ring from
// a gossip snapshot, so its reads and writes keep landing correctly while
// the fleet behind it grows (JoinNew) and shrinks (DrainAndLeave) —
// exactly the corec-server -membership + corec-cli -membership pairing.
func TestRemoteClusterElasticRing(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Transport = "tcp"
	cfg.Mode = PolicyCoREC
	cfg.Membership = &MembershipConfig{}
	host, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	newRemote := func() (*Cluster, *Client) {
		t.Helper()
		remoteCfg := DefaultConfig(8)
		remoteCfg.Mode = PolicyCoREC
		remoteCfg.ElemSize = 1
		remoteCfg.Membership = &MembershipConfig{}
		remote, err := NewRemoteCluster(remoteCfg, host.ServerAddrs())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { remote.Close() })
		return remote, remote.NewClient()
	}

	remote, client := newRemote()
	if got, want := remote.Ring().Epoch(), host.Ring().Epoch(); got != want {
		t.Fatalf("remote ring epoch %d, host %d", got, want)
	}
	ctx := context.Background()
	payload := []byte("elastic fleet over tcp")
	box := Box{Lo: []int64{0}, Hi: []int64{int64(len(payload))}}
	if err := client.Put(ctx, "demo", box, 1, payload); err != nil {
		t.Fatal(err)
	}

	// Grow and shrink the fleet behind the client's back, moving data.
	if _, err := host.JoinNew(); err != nil {
		t.Fatal(err)
	}
	metas, err := client.Query(ctx, "demo", Box{})
	if err != nil || len(metas) != 1 {
		t.Fatalf("query: %v (%d metas)", err, len(metas))
	}
	if _, err := host.DrainAndLeave(ctx, metas[0].Primary); err != nil {
		t.Fatalf("drain %d: %v", metas[0].Primary, err)
	}

	// The original handle's snapshot is stale but directory polling keeps
	// reads correct; a fresh handle re-pulls the current ring and must see
	// the post-churn fleet (9 joined, 1 left => 8 members).
	if got, err := client.Get(ctx, "demo", box, 1); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("stale-handle get = %q, %v", got, err)
	}
	remote2, client2 := newRemote()
	if got, want := remote2.Ring().Size(), host.Ring().Size(); got != want {
		t.Fatalf("fresh remote ring size %d, host %d", got, want)
	}
	if got, err := client2.Get(ctx, "demo", box, 1); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("fresh-handle get = %q, %v", got, err)
	}
	members, err := client2.MemberSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, m := range members {
		if m.State == "alive" {
			alive++
		}
	}
	if alive != host.Ring().Size() {
		t.Fatalf("snapshot alive=%d, ring size %d", alive, host.Ring().Size())
	}
}

func TestRemoteClusterValidation(t *testing.T) {
	if _, err := NewRemoteCluster(Config{}, nil); err == nil {
		t.Fatal("empty address map accepted")
	}
}

func TestUnknownTransportRejected(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Transport = "carrier-pigeon"
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
