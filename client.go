package corec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"corec/internal/geometry"
	"corec/internal/metrics"
	"corec/internal/ndarray"
	"corec/internal/placement"
	"corec/internal/transport"
	"corec/internal/types"
)

var contextBackground = context.Background()

var clientSeq atomic.Int64

// ErrDataLoss is returned by Get when an object cannot be served from any
// surviving copy or reconstructed from surviving shards (losses exceeded
// the configured resilience level).
var ErrDataLoss = errors.New("corec: data unavailable (losses exceed resilience level)")

// Client is an application-side handle to the staging cluster: the
// interface a simulation or analysis rank uses. Clients are cheap; create
// one per worker goroutine or share one (all methods are safe for
// concurrent use).
type Client struct {
	cluster *Cluster
	id      types.ServerID // negative: client address space
	col     *metrics.Collector

	// viewMu guards the elastic member-view cache: the ring's member list
	// at viewEpoch. Clients refresh it only when the ring epoch moves, so
	// steady-state requests never take the ring's lock for a full copy.
	viewMu    sync.Mutex
	view      []types.ServerID
	viewEpoch uint64
	viewInit  bool
}

// NewClient returns a client bound to the cluster.
func (c *Cluster) NewClient() *Client {
	return &Client{
		cluster: c,
		id:      types.ServerID(-1 - clientSeq.Add(1)),
		col:     c.col,
	}
}

// memberView returns the servers a directory-wide operation should address:
// the static fleet, or — in elastic mode — the ring's current membership,
// cached per client and refreshed when the ring epoch changes.
func (cl *Client) memberView() []types.ServerID {
	c := cl.cluster
	if c.elastic == nil {
		ids := make([]types.ServerID, c.cfg.Servers)
		for i := range ids {
			ids[i] = types.ServerID(i)
		}
		return ids
	}
	epoch := c.elastic.ring.Epoch()
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	if !cl.viewInit || cl.viewEpoch != epoch {
		cl.view = c.elastic.ring.Members()
		cl.viewEpoch = epoch
		cl.viewInit = true
	}
	return cl.view
}

// dirGroupFor returns the servers hosting the directory record for key,
// matching the server-side dirGroup computation on both placement schemes.
func (cl *Client) dirGroupFor(key string) []types.ServerID {
	c := cl.cluster
	if c.elastic != nil {
		mirrors := c.cfg.NLevel
		if mirrors < 1 {
			mirrors = 1
		}
		return c.ringDirGroup(key, mirrors)
	}
	return placement.DirectoryGroup(c.place.DirectoryShard(key), c.cfg.Servers, c.cfg.NLevel)
}

// send delivers one RPC under the cluster's retry policy — per-attempt
// timeouts, capped exponential backoff with jitter — tallying retry and
// fault counters. All protocol requests are idempotent, so resending on a
// transient fabric failure is safe.
func (cl *Client) send(ctx context.Context, to types.ServerID, msg *transport.Message) (*transport.Message, error) {
	c := cl.cluster
	resp, attempts, err := c.retry.Send(ctx, c.net, cl.id, to, msg)
	if attempts > 1 {
		cl.col.AddCounter(metrics.RetryCount, int64(attempts-1))
	}
	if err != nil {
		if errors.Is(err, transport.ErrCorruptFrame) || errors.Is(err, transport.ErrRemoteRetryable) {
			cl.col.AddCounter(metrics.CorruptFrameCount, 1)
		}
		if transport.IsRetryable(err) {
			cl.col.AddCounter(metrics.FaultCount, 1)
		}
	}
	return resp, err
}

// Put stages the region's data under the variable name at the given
// version (time step). The buffer must be a row-major array over box with
// the cluster's element size. Oversized regions are geometrically
// partitioned into objects (Algorithm 1) and staged in parallel. The
// recorded write response time covers the full operation.
func (cl *Client) Put(ctx context.Context, name string, box Box, version Version, data []byte) error {
	c := cl.cluster
	elem := c.cfg.ElemSize
	if len(data) != ndarray.BufferSize(box, elem) {
		return fmt.Errorf("corec: put buffer is %d bytes, want %d", len(data), ndarray.BufferSize(box, elem))
	}
	start := time.Now()
	defer func() { cl.col.RecordWrite(int64(version), time.Since(start)) }()

	maxCells := int64(c.cfg.MaxObjectBytes / elem)
	pieces, err := geometry.FitPartition(box, maxCells)
	if err != nil {
		return err
	}
	if len(pieces) == 1 {
		return cl.putObject(ctx, name, box, version, data)
	}
	// Stage the pieces in parallel and report every failure, not just the
	// first: a multi-piece put is one logical write, and the caller needs
	// to know the full set of regions that did not commit.
	var wg sync.WaitGroup
	errs := make([]error, len(pieces))
	for i, piece := range pieces {
		buf := make([]byte, ndarray.BufferSize(piece, elem))
		if _, err := ndarray.CopyRegion(box, data, piece, buf, elem); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, piece Box, buf []byte) {
			defer wg.Done()
			errs[i] = cl.putObject(ctx, name, piece, version, buf)
		}(i, piece, buf)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (cl *Client) putObject(ctx context.Context, name string, box Box, version Version, data []byte) error {
	c := cl.cluster
	id := types.ObjectID{Var: name, Box: box}
	primary := c.place.Primary(id)
	msg := &transport.Message{
		Kind:    transport.MsgPut,
		Var:     name,
		Box:     box,
		Version: version,
		Data:    data,
	}
	resp, err := cl.send(ctx, primary, msg)
	if err == nil {
		return resp.AsError()
	}
	if ctx.Err() != nil || !transport.IsRetryable(err) {
		return fmt.Errorf("corec: put %s: %w", id, err)
	}
	// Write-path failover: the placed primary stayed unreachable (or, in
	// elastic mode, fenced the write while draining) through the whole
	// retry budget, so hand the write to a successor. The successor's put
	// path makes it the new primary (the directory flips, the original
	// primary becomes a listed replica), so the object keeps its full
	// resilience level; the reroute is logged so the monitor reconciles
	// ownership once the original recovers.
	for _, alt := range cl.failoverTargets(id, primary) {
		if alt == primary {
			continue
		}
		resp, ferr := cl.send(ctx, alt, msg)
		if ferr != nil {
			continue
		}
		if aerr := resp.AsError(); aerr != nil {
			return aerr
		}
		c.recordReroute(Reroute{Key: id.Key(), From: primary, To: alt, Version: version})
		return nil
	}
	return fmt.Errorf("corec: put %s: %w", id, err)
}

// failoverTargets lists the servers a failed put should try next. Static
// fleets use the replication-group window. Elastic fleets re-resolve the
// key against the ring first — a drain or gossip eviction may already have
// moved the arc to a new owner — then walk the failed primary's ring
// successors (stable even after it left the ring).
func (cl *Client) failoverTargets(id types.ObjectID, primary types.ServerID) []types.ServerID {
	c := cl.cluster
	if c.elastic != nil {
		ring := c.elastic.ring
		out := make([]types.ServerID, 0, c.cfg.NLevel+2)
		if cur := ring.OwnerKey(id.Key()); cur != primary {
			out = append(out, cur)
		}
		out = append(out, ring.Targets(primary, c.cfg.NLevel+1)...)
		return out
	}
	if c.groups == nil {
		return nil
	}
	return c.groups.ReplicaTargets(primary, c.cfg.NLevel)
}

// Get reads the region of the variable at the given version, returning a
// row-major buffer over box. Objects intersecting the region are located
// through the metadata directory and fetched in parallel; failures trigger
// replica fallback or degraded reconstruction transparently.
func (cl *Client) Get(ctx context.Context, name string, box Box, version Version) ([]byte, error) {
	start := time.Now()
	defer func() { cl.col.RecordRead(int64(version), time.Since(start)) }()

	metas, err := cl.queryDirectory(ctx, name, box)
	if err != nil {
		return nil, err
	}
	elem := cl.cluster.cfg.ElemSize
	out := make([]byte, ndarray.BufferSize(box, elem))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := range metas {
		meta := metas[i]
		if !meta.ID.Box.Intersects(box) {
			continue
		}
		wg.Add(1)
		go func(meta types.ObjectMeta) {
			defer wg.Done()
			data, err := cl.fetchObject(ctx, &meta)
			if err == nil {
				// Safe outside the lock: the partitioner tiles objects over
				// disjoint boxes, so each copy writes a disjoint region of
				// out. Serializing the copies under mu made every fetch wait
				// on its neighbours' memcpy — the mutex only needs to guard
				// error aggregation.
				_, err = ndarray.CopyRegion(meta.ID.Box, data, box, out, elem)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(meta)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Query returns the metadata of all staged objects of the variable
// intersecting the region (deduplicated, newest version per object).
func (cl *Client) Query(ctx context.Context, name string, box Box) ([]types.ObjectMeta, error) {
	return cl.queryDirectory(ctx, name, box)
}

// Delete evicts every staged object of the variable intersecting the
// region: full copies, replicas, erasure shards and metadata are all
// released. Returns the number of objects evicted. Applications call this
// once a time step's data has been consumed, to bound staging memory.
func (cl *Client) Delete(ctx context.Context, name string, box Box) (int, error) {
	metas, err := cl.queryDirectory(ctx, name, box)
	if err != nil {
		return 0, err
	}
	deleted := 0
	var firstErr error
	for _, m := range metas {
		if box.Valid() && !m.ID.Box.Intersects(box) {
			continue
		}
		resp, err := cl.send(ctx, m.Primary, &transport.Message{
			Kind: transport.MsgDelete, Key: m.ID.Key(),
		})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("corec: delete %s: %w", m.ID, err)
			}
			continue
		}
		if err := resp.AsError(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if resp.Flag {
			deleted++
		}
	}
	return deleted, firstErr
}

func (cl *Client) queryDirectory(ctx context.Context, name string, box Box) ([]types.ObjectMeta, error) {
	start := time.Now()
	defer func() { cl.col.Add(metrics.Metadata, time.Since(start)) }()
	type result struct {
		metas []types.ObjectMeta
		err   error
	}
	members := cl.memberView()
	n := len(members)
	results := make(chan result, n)
	for _, target := range members {
		go func(target types.ServerID) {
			msg := &transport.Message{Kind: transport.MsgMetaQuery, Var: name, Box: box}
			resp, err := cl.send(ctx, target, msg)
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{metas: resp.Metas}
		}(target)
	}
	best := make(map[string]types.ObjectMeta)
	reachable := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			continue
		}
		reachable++
		for _, m := range r.metas {
			key := m.ID.Key()
			if cur, ok := best[key]; !ok || metaNewer(&m, &cur) {
				best[key] = m
			}
		}
	}
	if reachable == 0 {
		return nil, fmt.Errorf("corec: no directory shard reachable")
	}
	out := make([]types.ObjectMeta, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Key() < out[j].ID.Key() })
	return out, nil
}

// fetchObject retrieves one object's payload following its resilience
// state: full copies (primary, then replicas) for replicated objects;
// systematic shard gather, with degraded reconstruction on failure, for
// encoded objects. A fetch can race the background replicated<->encoded
// transition: on a miss the client refetches the object's metadata and
// retries through the new state before declaring data loss.
func (cl *Client) fetchObject(ctx context.Context, meta *types.ObjectMeta) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		var data []byte
		var err error
		switch meta.State {
		case types.StateEncoded:
			data, err = cl.fetchEncoded(ctx, meta)
		default:
			data, err = cl.fetchReplicated(ctx, meta)
		}
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !errors.Is(err, ErrDataLoss) {
			return nil, err
		}
		// Back off briefly: a state transition (encode commit, promotion,
		// failover) may be mid-flight; the directory converges quickly.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(attempt+1) * 200 * time.Microsecond):
		}
		fresh, ok := cl.lookupMeta(ctx, meta.ID.Key())
		if !ok {
			continue
		}
		meta = fresh
	}
	return nil, lastErr
}

// lookupMeta fetches a single object's metadata record from its shard
// group. Every reachable mirror is consulted and the newest record wins:
// under concurrent state flips a mirror can lag by one transition, and a
// lagging record may point at a stripe the newer flip already dropped, so
// first-answer-wins would turn a replica lag into a phantom data loss.
func (cl *Client) lookupMeta(ctx context.Context, key string) (*types.ObjectMeta, bool) {
	start := time.Now()
	defer func() { cl.col.Add(metrics.Metadata, time.Since(start)) }()
	var best *types.ObjectMeta
	for _, t := range cl.dirGroupFor(key) {
		resp, err := cl.send(ctx, t, &transport.Message{Kind: transport.MsgMetaLookup, Key: key})
		if err == nil && resp.Kind == transport.MsgOK && resp.Flag {
			if best == nil || metaNewer(resp.Meta, best) {
				best = resp.Meta
			}
		}
	}
	return best, best != nil
}

// metaNewer reports whether a supersedes b: higher version, or a later
// same-version state flip (ObjectMeta.Seq orders those).
func metaNewer(a, b *types.ObjectMeta) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	return a.Seq > b.Seq
}

func (cl *Client) fetchReplicated(ctx context.Context, meta *types.ObjectMeta) ([]byte, error) {
	key := meta.ID.Key()
	for _, target := range meta.Locations() {
		resp, err := cl.send(ctx, target, &transport.Message{Kind: transport.MsgGet, Key: key})
		if err != nil || resp.Kind != transport.MsgGetBytes || !resp.Flag {
			continue
		}
		return resp.Data, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrDataLoss, key)
}

func (cl *Client) fetchEncoded(ctx context.Context, meta *types.ObjectMeta) ([]byte, error) {
	c := cl.cluster
	info, ok := cl.lookupStripe(ctx, meta.Stripe)
	if !ok {
		return nil, fmt.Errorf("%w: stripe %v metadata missing", ErrDataLoss, meta.Stripe)
	}
	shards := make([][]byte, info.K+info.M)
	have := 0
	var missingData bool
	// Systematic fast path: the k data shards, in parallel.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, member := range info.Members {
		if member.Index >= info.K {
			continue
		}
		wg.Add(1)
		go func(member types.StripeMember) {
			defer wg.Done()
			b, ok := cl.fetchShard(ctx, info.ID, member)
			mu.Lock()
			defer mu.Unlock()
			if ok {
				shards[member.Index] = b
				have++
			} else {
				missingData = true
			}
		}(member)
	}
	wg.Wait()
	if missingData {
		// Degraded read: pull parity shards and reconstruct the data. All
		// surviving parity is fetched in parallel, even when fewer shards
		// would complete the stripe — at most m extra shards of bandwidth,
		// traded for one fetch round-trip instead of m sequential ones (the
		// degraded path is latency-bound, and spare shards let reconstruction
		// proceed when a parity fetch fails too).
		var pwg sync.WaitGroup
		for _, member := range info.Members {
			if member.Index < info.K || shards[member.Index] != nil {
				continue
			}
			pwg.Add(1)
			go func(member types.StripeMember) {
				defer pwg.Done()
				b, ok := cl.fetchShard(ctx, info.ID, member)
				mu.Lock()
				defer mu.Unlock()
				if ok {
					shards[member.Index] = b
					have++
				}
			}(member)
		}
		pwg.Wait()
		if have < info.K {
			return nil, fmt.Errorf("%w: stripe %v has %d of %d shards", ErrDataLoss, info.ID, have, info.K)
		}
		dStart := time.Now()
		if err := c.codec.ReconstructData(shards); err != nil {
			return nil, err
		}
		cl.col.Add(metrics.Decode, time.Since(dStart))
		// Lazy recovery on access: if a replacement server has taken over
		// a dead member's ID, ask it to repair this object now.
		cl.triggerOnAccessRepair(ctx, info, meta.ID.Key())
	}
	return c.codec.Join(shards, meta.Size)
}

// lookupStripe resolves stripe geometry from the directory pair.
func (cl *Client) lookupStripe(ctx context.Context, id types.StripeID) (*types.StripeInfo, bool) {
	start := time.Now()
	defer func() { cl.col.Add(metrics.Metadata, time.Since(start)) }()
	key := id.String()
	for _, t := range cl.dirGroupFor(key) {
		resp, err := cl.send(ctx, t, &transport.Message{Kind: transport.MsgStripeLookup, Stripe: id})
		if err == nil && resp.Kind == transport.MsgOK && resp.Flag {
			return resp.StripeInfo, true
		}
	}
	return nil, false
}

func (cl *Client) fetchShard(ctx context.Context, id types.StripeID, member types.StripeMember) ([]byte, bool) {
	resp, err := cl.send(ctx, member.Server, &transport.Message{
		Kind: transport.MsgShardGet, Stripe: id, ShardIndex: member.Index,
	})
	if err != nil || resp.Kind != transport.MsgGetBytes || !resp.Flag {
		return nil, false
	}
	return resp.Data, true
}

// triggerOnAccessRepair asks stripe members that answered "shard missing"
// (replacement servers still recovering) to repair this object immediately:
// the on-access half of lazy recovery.
func (cl *Client) triggerOnAccessRepair(ctx context.Context, info *types.StripeInfo, key string) {
	c := cl.cluster
	for _, member := range info.Members {
		if !c.Alive(member.Server) {
			continue
		}
		srv := c.Server(member.Server)
		if srv == nil || srv.RepairQueueLen() == 0 {
			continue
		}
		member := member
		go func() {
			// Fire-and-forget nudge: the next read retries repair anyway.
			_, _ = c.net.Send(context.Background(), cl.id, member.Server,
				&transport.Message{Kind: transport.MsgRecover, Key: key})
		}()
	}
}
