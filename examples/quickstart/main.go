// Quickstart: stage a 3-D array region with CoREC resilience, kill a
// staging server, and read the data back through the degraded path.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
)

import "corec"

func main() {
	// An 8-server staging cluster with the paper's defaults: RS(3+1), one
	// replica for hot data, storage-efficiency bound 67%.
	cluster, err := corec.NewCluster(corec.DefaultConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient()
	ctx := context.Background()

	// Stage a 32x32x32 region of float64s (256 KiB).
	region := corec.Box3D(0, 0, 0, 32, 32, 32)
	data := make([]byte, region.Volume()*8)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := client.Put(ctx, "temperature", region, 1, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("staged %d KiB of \"temperature\" at time step 1\n", len(data)>>10)

	// Where did it land?
	metas, err := client.Query(ctx, "temperature", region)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range metas {
		fmt.Printf("  object %v: %d bytes, state=%v, primary=server %d\n",
			m.ID, m.Size, m.State, m.Primary)
	}

	// Fail the primary staging server. Its memory contents are gone.
	victim := metas[0].Primary
	cluster.Kill(victim)
	fmt.Printf("killed staging server %d\n", victim)

	// The read still succeeds: the client fails over to the replica (or
	// reconstructs from erasure shards if the object had gone cold).
	got, err := client.Get(ctx, "temperature", region, 1)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		log.Fatal("data mismatch after failure")
	}
	fmt.Println("read back intact through the degraded path ✓")

	rep := cluster.StorageReport()
	fmt.Printf("storage: %d replicated / %d encoded objects, efficiency %.2f\n",
		rep.Replicated, rep.Encoded, rep.Efficiency)
}
