// policy-compare: runs the same hotspot workload (the paper's Case 3)
// under every resilience policy and prints a Figure 8-style comparison of
// write/read response times, storage efficiency, and the combined
// write-efficiency metric.
//
// Run with: go run ./examples/policy-compare
package main

import (
	"fmt"
	"log"
	"os"

	"corec"
	"corec/internal/harness"
	"corec/internal/workload"
)

func main() {
	fmt.Println("Case-3 hotspot workload under each resilience policy:")
	var results []*harness.Result
	for _, spec := range []struct {
		label string
		mode  corec.Mode
	}{
		{"DataSpaces (none)", corec.PolicyNone},
		{"Replication", corec.PolicyReplicate},
		{"Erasure coding", corec.PolicyErasure},
		{"Simple hybrid", corec.PolicyHybrid},
		{"CoREC", corec.PolicyCoREC},
	} {
		res, err := harness.Run(harness.Options{
			Label:     spec.label,
			Mode:      spec.mode,
			Pattern:   workload.Case3Hotspot,
			Servers:   8,
			Writers:   8,
			Readers:   4,
			Domain:    corec.Box3D(0, 0, 0, 64, 64, 64),
			BlockSize: []int64{16, 16, 16},
			TimeSteps: 12,
			Seed:      5,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	harness.WriteSummary(os.Stdout, results)
	fmt.Println("\nlower write(ms) at higher eff is better; CoREC should offer the")
	fmt.Println("best write-time/storage-efficiency balance among the resilient policies.")
}
