// checkpoint-compare: the Figure 2 story as a runnable demo — the same
// staged workload protected three ways: not at all, by periodic
// Checkpoint/Restart to a (simulated) parallel file system, and by CoREC.
// Checkpointing stalls the workflow in proportion to the staged volume and
// still needs a costly global restart after a failure; CoREC's redundancy
// rides along with the writes and recovers in place.
//
// Run with: go run ./examples/checkpoint-compare
package main

import (
	"fmt"
	"log"
	"time"

	"corec"
	"corec/internal/geometry"
	"corec/internal/harness"
	"corec/internal/simnet"
	"corec/internal/workload"
)

func main() {
	base := harness.Options{
		Servers:   8,
		Writers:   8,
		Readers:   4,
		Pattern:   workload.Case5ReadAll,
		Domain:    geometry.Box3D(0, 0, 0, 96, 96, 96),
		BlockSize: []int64{24, 24, 24},
		TimeSteps: 20,
		ElemSize:  8,
		Link:      simnet.Titan(1),
		Seed:      9,
	}
	fmt.Printf("workload: stage %.1f MiB once, analysis reads it for 20 steps\n\n",
		float64(base.Domain.Volume()*8)/(1<<20))

	plain := base
	plain.Label = "no fault tolerance"
	plain.Mode = corec.PolicyNone
	rPlain, err := harness.Run(plain)
	if err != nil {
		log.Fatal(err)
	}

	checked := base
	checked.Label = "checkpoint/restart"
	checked.Mode = corec.PolicyNone
	checked.CheckpointPeriod = rPlain.Elapsed / 13 // the paper's ~4s cadence
	checked.MaxCheckpoints = 13
	checked.PFS = simnet.PFSModel{OpenLatency: 2 * time.Millisecond, BytesPerSecond: 256 << 20}
	rCheck, err := harness.Run(checked)
	if err != nil {
		log.Fatal(err)
	}

	withCoREC := base
	withCoREC.Label = "CoREC"
	withCoREC.Mode = corec.PolicyCoREC
	rCoREC, err := harness.Run(withCoREC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s total %8v  (baseline)\n", rPlain.Label, rPlain.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s total %8v  (+%.0f%%: %d checkpoints cost %v, restart would cost %v,\n",
		rCheck.Label, rCheck.Elapsed.Round(time.Millisecond),
		pct(rCheck.Elapsed, rPlain.Elapsed), rCheck.Checkpoints,
		rCheck.CheckpointTime.Round(time.Millisecond), rCheck.RestartTime.Round(time.Millisecond))
	fmt.Printf("%-22s %8s  and a failure rolls every component back)\n", "", "")
	fmt.Printf("%-22s total %8v  (+%.0f%%: redundancy is online; failures are served\n",
		rCoREC.Label, rCoREC.Elapsed.Round(time.Millisecond), pct(rCoREC.Elapsed, rPlain.Elapsed))
	fmt.Printf("%-22s %8s  in degraded mode with zero lost work)\n", "", "")
}

func pct(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a)/float64(b) - 1) * 100
}
