// failure-recovery: reproduces the shape of the paper's Figure 10 — a
// read-every-step workload with staged failures, degraded-mode reads, and
// CoREC's lazy recovery once a replacement server joins. Watch the read
// latency bump while servers are dead, the gradual repair, and the return
// to baseline.
//
// Run with: go run ./examples/failure-recovery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"corec"
	"corec/internal/geometry"
	"corec/internal/ndarray"
	"corec/internal/recovery"
)

func main() {
	cfg := corec.DefaultConfig(8)
	cfg.MTBF = 4 * time.Second // lazy recovery deadline = 1s
	cluster, err := corec.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient()
	ctx := context.Background()

	// Populate the domain once (Case 5: read-dominated workload).
	domain := corec.Box3D(0, 0, 0, 64, 32, 32)
	blocks, err := geometry.GridDecompose(domain, []int64{16, 16, 16})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, b := range blocks {
		buf := make([]byte, ndarray.BufferSize(b, 8))
		rng.Read(buf)
		if err := client.Put(ctx, "field", b, 1, buf); err != nil {
			log.Fatal(err)
		}
	}
	// Let everything cool into erasure coding.
	for ts := corec.Version(2); ts <= 3; ts++ {
		cluster.EndTimeStep(ts)
	}
	rep := cluster.StorageReport()
	fmt.Printf("staged %d objects (%d encoded) across 8 servers\n",
		rep.Replicated+rep.Encoded, rep.Encoded)

	victim := corec.ServerID(2)
	for ts := 4; ts <= 16; ts++ {
		switch ts {
		case 6:
			cluster.Kill(victim)
			fmt.Printf("-- ts %d: server %d FAILED (degraded mode: reads reconstruct on the fly)\n", ts, victim)
		case 10:
			srv, err := cluster.Replace(victim)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("-- ts %d: replacement server joined; lazy recovery running (deadline MTBF/4)\n", ts)
			go func() {
				repaired, err := srv.RunRecovery(ctx, recovery.Lazy)
				if err != nil {
					log.Printf("recovery: %v", err)
				}
				fmt.Printf("   lazy recovery finished: %d objects repaired in the background\n", repaired)
			}()
		}
		start := time.Now()
		if _, err := client.Get(ctx, "field", domain, 1); err != nil {
			log.Fatalf("ts %d: read failed: %v", ts, err)
		}
		fmt.Printf("   ts %2d: full-domain read %v\n", ts, time.Since(start).Round(time.Microsecond))
		time.Sleep(100 * time.Millisecond) // pace the timeline so repair interleaves
	}
	fmt.Println("all reads stayed available across failure and recovery ✓")
}
