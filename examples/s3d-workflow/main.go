// s3d-workflow: a scaled-down version of the paper's S3D lifted-hydrogen
// combustion workflow — a parallel simulation writes its 3-D decomposition
// into the staging area every time step while a coupled analysis
// application reads the full domain back, all protected by CoREC.
//
// Run with: go run ./examples/s3d-workflow
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"corec"
	"corec/internal/geometry"
	"corec/internal/ndarray"
)

const (
	writers   = 16
	timeSteps = 10
	blockEdge = 16 // per-writer 16^3 block, mirroring the paper's 64^3
)

func main() {
	// Domain: 4x2x2 writer grid of 16^3 blocks = 64x32x32 cells.
	domain := corec.Box3D(0, 0, 0, 4*blockEdge, 2*blockEdge, 2*blockEdge)
	cfg := corec.DefaultConfig(8)
	cfg.Domain = domain
	cluster, err := corec.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	blocks, err := geometry.GridDecompose(domain, []int64{blockEdge, blockEdge, blockEdge})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S3D-like workflow: %d writers x %d steps over %v (%.1f MiB/step)\n",
		writers, timeSteps, domain, float64(domain.Volume()*8)/(1<<20))

	ctx := context.Background()

	// The analysis application runs concurrently with the simulation,
	// consuming each time step as soon as its data reaches the staging
	// area (WaitForVersion is the coupling primitive).
	type stepReport struct {
		ts   corec.Version
		read time.Duration
	}
	reads := make(chan stepReport, timeSteps)
	go func() {
		analysis := cluster.NewClient()
		for ts := corec.Version(1); ts <= timeSteps; ts++ {
			if _, err := analysis.WaitForVersion(ctx, "species", domain, ts); err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if _, err := analysis.Get(ctx, "species", domain, ts); err != nil {
				log.Fatal(err)
			}
			reads <- stepReport{ts: ts, read: time.Since(start)}
		}
		close(reads)
	}()

	for ts := corec.Version(1); ts <= timeSteps; ts++ {
		// Simulation phase: every writer rank stages its sub-domain.
		wStart := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				client := cluster.NewClient()
				rng := rand.New(rand.NewSource(int64(ts)*100 + int64(w)))
				for i := w; i < len(blocks); i += writers {
					buf := make([]byte, ndarray.BufferSize(blocks[i], 8))
					rng.Read(buf)
					if err := client.Put(ctx, "species", blocks[i], ts, buf); err != nil {
						log.Fatal(err)
					}
				}
			}(w)
		}
		wg.Wait()
		writeTime := time.Since(wStart)
		demoted, promoted := cluster.EndTimeStep(ts)
		fmt.Printf("  ts %2d: write %8v  (transitions: %d demoted, %d promoted)\n",
			ts, writeTime.Round(time.Microsecond), demoted, promoted)
	}
	for r := range reads {
		fmt.Printf("  analysis consumed ts %2d in %v\n", r.ts, r.read.Round(time.Microsecond))
	}

	rep := cluster.StorageReport()
	fmt.Printf("final storage: %.1f MiB primary, %.1f MiB replicas, %.1f MiB shards; efficiency %.2f\n",
		mib(rep.ObjectBytes), mib(rep.ReplicaBytes), mib(rep.ShardBytes), rep.Efficiency)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }
