// tiered-staging: prototype of the paper's future-work extension —
// spreading staged payloads across DRAM / NVRAM / SSD with utility-based
// placement. A hotspot workload keeps one quarter of the domain hot; after
// each time step the tiered store rebalances so the hot working set owns
// the scarce DRAM while cold data spills to slower tiers, and the measured
// read latencies show the difference.
//
// Run with: go run ./examples/tiered-staging
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"corec/internal/geometry"
	"corec/internal/tiering"
)

func main() {
	domain := geometry.Box3D(0, 0, 0, 64, 64, 64)
	blocks, err := geometry.GridDecompose(domain, []int64{16, 16, 16})
	if err != nil {
		log.Fatal(err)
	}
	blockBytes := int(blocks[0].Volume()) * 8

	// DRAM holds only a quarter of the dataset; NVRAM and SSD catch the
	// spill. Costs are applied, and exaggerated to millisecond scale so
	// the tier difference is visible above OS timer granularity.
	cfg := tiering.DefaultConfig(int64(len(blocks)/4) * int64(blockBytes))
	cfg.ApplyCosts = true
	cfg.Tiers[tiering.NVRAM].ReadLatency = 2 * time.Millisecond
	cfg.Tiers[tiering.SSD].ReadLatency = 8 * time.Millisecond
	store, err := tiering.NewStore(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	for i, b := range blocks {
		buf := make([]byte, blockBytes)
		rng.Read(buf)
		if _, err := store.Put(b.Key(), buf); err != nil {
			log.Fatalf("stage block %d: %v", i, err)
		}
	}
	usage := store.Usage()
	fmt.Printf("staged %d blocks (%d KiB each): dram %d KiB, nvram %d KiB, ssd %d KiB\n",
		len(blocks), blockBytes>>10, usage[0]>>10, usage[1]>>10, usage[2]>>10)

	// The hot quarter: blocks whose lower corner sits in x<32, y<32.
	var hot, cold []geometry.Box
	for _, b := range blocks {
		if b.Lo[0] < 32 && b.Lo[1] < 32 {
			hot = append(hot, b)
		} else {
			cold = append(cold, b)
		}
	}

	readSet := func(set []geometry.Box) time.Duration {
		start := time.Now()
		for _, b := range set {
			if _, _, ok := store.Get(b.Key()); !ok {
				log.Fatalf("block %v missing", b)
			}
		}
		return time.Since(start) / time.Duration(len(set))
	}

	fmt.Println("\nts   hot-read/blk  cold-read/blk  moved  hot-in-dram")
	for ts := 1; ts <= 8; ts++ {
		hotLat := readSet(hot)
		var coldLat time.Duration
		if ts%4 == 1 { // the analysis occasionally sweeps the cold data
			coldLat = readSet(cold)
		}
		moved := store.Rebalance()
		inDram := 0
		for _, b := range hot {
			if l, _ := store.Level(b.Key()); l == tiering.DRAM {
				inDram++
			}
		}
		fmt.Printf("%2d   %12v  %13v  %5d  %d/%d\n",
			ts, hotLat.Round(time.Microsecond), coldLat.Round(time.Microsecond), moved, inDram, len(hot))
	}
	fmt.Println("\nafter warm-up the hot quarter owns DRAM and its reads are the cheap ones.")
}
