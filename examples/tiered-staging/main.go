// tiered-staging: the storage engine's three tiers in isolation — L1
// process memory, L2 append-only disk segments, L3 a modeled remote object
// store. A hotspot workload keeps one quarter of the domain hot; the
// utility-density spiller demotes the cold blocks so the hot working set
// owns the scarce memory budget, and the measured read latencies show the
// tier penalty. A sequential second pass then demonstrates the prefetcher
// staging the next time step's blocks before they are asked for.
//
// Run with: go run ./examples/tiered-staging
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"corec/internal/geometry"
	"corec/internal/storage"
)

func main() {
	domain := geometry.Box3D(0, 0, 0, 64, 64, 64)
	blocks, err := geometry.GridDecompose(domain, []int64{16, 16, 16})
	if err != nil {
		log.Fatal(err)
	}
	blockBytes := int(blocks[0].Volume()) * 8

	// Memory holds only a quarter of the dataset; the disk tier catches
	// the spill and an artificially slow remote store catches the oldest
	// cold data, so the tier difference is visible above timer noise.
	dir, err := os.MkdirTemp("", "tiered-staging-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	remoteCfg := storage.RemoteConfig{
		OpenLatency:    4 * time.Millisecond,
		BytesPerSecond: 64 << 20,
	}
	remote := storage.NewRemoteStore(remoteCfg)
	eng, err := storage.Open(storage.Config{
		MemBytes:  int64(len(blocks)/4) * int64(blockBytes),
		Dir:       dir,
		DiskBytes: int64(len(blocks)/2) * int64(blockBytes),
		Prefetch:  true,
		Remote:    &remoteCfg,
	}, remote, "demo/")
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Stage every block, tagged with time step 1 so the prefetcher can
	// recognize sequential cross-step access later.
	rng := rand.New(rand.NewSource(11))
	for i, b := range blocks {
		buf := make([]byte, blockBytes)
		rng.Read(buf)
		eng.PutTagged(b.Key(), buf, 1)
		if i%2 == 0 { // half the blocks exist for step 2 as well
			eng.PutTagged("v2/"+b.Key(), buf, 2)
		}
	}
	eng.WaitIdle()
	st := eng.Stats()
	fmt.Printf("staged %d blocks (%d KiB each): mem %d, disk %d, remote %d\n",
		len(blocks), blockBytes>>10, st.MemObjects, st.DiskObjects, st.RemoteObjects)

	// The hot quarter: blocks whose lower corner sits in x<32, y<32.
	var hot, cold []geometry.Box
	for _, b := range blocks {
		if b.Lo[0] < 32 && b.Lo[1] < 32 {
			hot = append(hot, b)
		} else {
			cold = append(cold, b)
		}
	}

	readSet := func(set []geometry.Box) time.Duration {
		start := time.Now()
		for _, b := range set {
			if _, ok := eng.Get(b.Key()); !ok {
				log.Fatalf("block %v missing", b)
			}
		}
		return time.Since(start) / time.Duration(len(set))
	}

	fmt.Println("\nts   hot-read/blk  cold-read/blk  hot-in-mem")
	for ts := 1; ts <= 6; ts++ {
		hotLat := readSet(hot)
		var coldLat time.Duration
		if ts%3 == 1 { // the analysis occasionally sweeps the cold data
			coldLat = readSet(cold)
		}
		eng.WaitIdle()
		inMem := 0
		for _, b := range hot {
			if tier, ok := eng.TierOf(b.Key()); ok && tier == storage.TierMem {
				inMem++
			}
		}
		fmt.Printf("%2d   %12v  %13v  %d/%d\n",
			ts, hotLat.Round(time.Microsecond), coldLat.Round(time.Microsecond), inMem, len(hot))
	}

	// Sequential pass over step 1 arms the prefetcher, which stages the
	// step-2 blocks behind the reader's back.
	for _, b := range blocks {
		if _, ok := eng.Get(b.Key()); !ok {
			log.Fatalf("block %v missing", b)
		}
		eng.WaitIdle()
	}
	for i, b := range blocks {
		if i%2 != 0 {
			continue
		}
		if _, ok := eng.Get("v2/" + b.Key()); !ok {
			log.Fatalf("step-2 block %v missing", b)
		}
	}
	st = eng.Stats()
	fmt.Printf("\nprefetch: issued %d, hits %d — the next step's blocks were already resident.\n",
		st.PrefetchIssued, st.PrefetchHits)
	fmt.Println("after warm-up the hot quarter owns memory and its reads are the cheap ones.")
}
