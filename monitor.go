package corec

import (
	"context"
	"sort"
	"sync"
	"time"

	"corec/internal/metrics"
	"corec/internal/recovery"
	"corec/internal/transport"
	"corec/internal/types"
)

// Monitor is the cluster's System Status Monitor (Figure 7 of the paper):
// it heartbeats every staging server, detects fail-stop crashes, and —
// when auto-recovery is enabled — starts a replacement server and drives
// the configured recovery scheme, exactly as an operator (or the harness's
// scripted scheduler) would by hand.
type Monitor struct {
	cluster *Cluster
	cfg     MonitorConfig

	mu       sync.Mutex
	suspects map[types.ServerID]int
	dead     map[types.ServerID]bool
	events   []MonitorEvent
	cancel   context.CancelFunc
	done     chan struct{}
}

// MonitorConfig tunes detection and reaction.
type MonitorConfig struct {
	// Interval between heartbeat rounds. Default 50ms.
	Interval time.Duration
	// ProbeTimeout bounds each individual heartbeat RPC. It defaults to
	// Interval for backward compatibility, but the two answer different
	// questions — how often to look vs how long to wait — so a slow fabric
	// can get a long probe deadline without also slowing the sweep cadence
	// (or vice versa).
	ProbeTimeout time.Duration
	// SuspectThreshold is how many consecutive missed heartbeats declare a
	// server dead. Default 2.
	SuspectThreshold int
	// AutoRecover, when set, replaces dead servers and runs recovery in
	// the configured RecoveryMode automatically.
	AutoRecover bool
	// ScrubAfterRecovery, when set, runs one anti-entropy scrub pass on
	// each replacement server after its recovery and reroute
	// reconciliation finish, so repaired payloads are checksum-verified
	// before the server is declared healthy again.
	ScrubAfterRecovery bool
	// OnEvent, when non-nil, receives detection/recovery events.
	OnEvent func(MonitorEvent)
}

// MonitorEventKind enumerates monitor events.
type MonitorEventKind int

// Monitor event kinds.
const (
	// EventFailureDetected fires when a server is declared dead.
	EventFailureDetected MonitorEventKind = iota
	// EventRecoveryStarted fires when a replacement joins.
	EventRecoveryStarted
	// EventRecoveryFinished fires when the replacement's repair completes.
	EventRecoveryFinished
)

// String implements fmt.Stringer.
func (k MonitorEventKind) String() string {
	switch k {
	case EventRecoveryStarted:
		return "recovery-started"
	case EventRecoveryFinished:
		return "recovery-finished"
	default:
		return "failure-detected"
	}
}

// MonitorEvent records one detection or recovery action.
type MonitorEvent struct {
	Kind     MonitorEventKind
	Server   ServerID
	Time     time.Time
	Repaired int // objects repaired (EventRecoveryFinished only)
}

// StartMonitor begins heartbeating. Stop it with Monitor.Stop; it also
// stops when the cluster closes its last server (heartbeats simply find
// nothing to probe).
func (c *Cluster) StartMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Interval
	}
	if cfg.SuspectThreshold <= 0 {
		cfg.SuspectThreshold = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Monitor{
		cluster:  c,
		cfg:      cfg,
		suspects: make(map[types.ServerID]int),
		dead:     make(map[types.ServerID]bool),
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	if c.elastic != nil {
		// Elastic mode: gossip already detects failures fleet-wide; the
		// monitor keeps only its reaction role, consuming membership events
		// instead of running its own heartbeat sweep.
		go m.runElastic(ctx)
	} else {
		go m.run(ctx)
	}
	return m
}

// Stop terminates the heartbeat loop and waits for it to exit.
func (m *Monitor) Stop() {
	m.cancel()
	<-m.done
}

// Events returns a copy of the recorded events.
func (m *Monitor) Events() []MonitorEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MonitorEvent(nil), m.events...)
}

// Dead returns the servers currently believed dead.
func (m *Monitor) Dead() []ServerID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ServerID, 0, len(m.dead))
	for id := range m.dead {
		out = append(out, ServerID(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Monitor) run(ctx context.Context) {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.probeAll(ctx)
		}
	}
}

func (m *Monitor) probeAll(ctx context.Context) {
	c := m.cluster
	for i := 0; i < c.cfg.Servers; i++ {
		id := types.ServerID(i)
		probeCtx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
		resp, err := c.net.Send(probeCtx, -1, id, &transport.Message{Kind: transport.MsgPing})
		cancel()
		alive := err == nil && resp.Kind == transport.MsgOK
		m.mu.Lock()
		if alive {
			m.suspects[id] = 0
			if m.dead[id] {
				// A replacement joined outside the monitor (manual
				// Replace); clear the record.
				delete(m.dead, id)
			}
			m.mu.Unlock()
			continue
		}
		if m.dead[id] {
			m.mu.Unlock()
			continue
		}
		m.suspects[id]++
		declared := m.suspects[id] >= m.cfg.SuspectThreshold
		if declared {
			m.dead[id] = true
		}
		m.mu.Unlock()
		if declared {
			m.emit(MonitorEvent{Kind: EventFailureDetected, Server: ServerID(id), Time: time.Now()})
			if m.cfg.AutoRecover {
				go m.recover(ctx, id)
			}
		}
	}
}

// runElastic is the membership-event consumer loop: deaths reported by the
// gossip fleet trigger the same detection event and (optional) recovery as
// a heartbeat verdict would; voluntary departures and refuted suspicions
// need no reaction beyond bookkeeping.
func (m *Monitor) runElastic(ctx context.Context) {
	defer close(m.done)
	events := m.cluster.MemberEvents()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-events:
			m.handleMemberEvent(ctx, ev)
		}
	}
}

func (m *Monitor) handleMemberEvent(ctx context.Context, ev MembershipEvent) {
	id := ev.ID
	switch ev.Kind {
	case MemberDied:
		m.mu.Lock()
		already := m.dead[id]
		m.dead[id] = true
		m.mu.Unlock()
		if already {
			return
		}
		m.emit(MonitorEvent{Kind: EventFailureDetected, Server: ServerID(id), Time: time.Now()})
		if m.cfg.AutoRecover {
			go m.recover(ctx, id)
		}
	case MemberJoined, MemberRefuted:
		m.mu.Lock()
		delete(m.dead, id)
		m.suspects[id] = 0
		m.mu.Unlock()
	case MemberLeft:
		// Voluntary departure after a drain: data already moved, nothing to
		// recover. Clear any stale death record for the id.
		m.mu.Lock()
		delete(m.dead, id)
		m.mu.Unlock()
	}
}

func (m *Monitor) recover(ctx context.Context, id types.ServerID) {
	srv, err := m.cluster.Replace(ServerID(id))
	if err != nil {
		return
	}
	m.emit(MonitorEvent{Kind: EventRecoveryStarted, Server: ServerID(id), Time: time.Now()})
	mode := recovery.Lazy
	if m.cluster.cfg.RecoveryMode == RecoveryAggressive {
		mode = recovery.Aggressive
	}
	repaired, _ := srv.RunRecovery(ctx, mode)
	m.reconcileReroutes(ctx, id)
	if m.cfg.ScrubAfterRecovery {
		// Best-effort: a failed pass (context cancelled, fabric flapping)
		// leaves the payloads for the background scrubber's next cycle.
		_, _ = srv.ScrubOnce(ctx)
	}
	m.mu.Lock()
	delete(m.dead, id)
	m.suspects[id] = 0
	m.mu.Unlock()
	m.emit(MonitorEvent{Kind: EventRecoveryFinished, Server: ServerID(id), Time: time.Now(), Repaired: repaired})
}

// reconcileReroutes drains the write-failover log for the recovered
// server: every put that was rerouted away while it was down is replayed
// as a recover instruction, so the server re-fetches the object from its
// new primary and the directory's ownership view converges promptly
// instead of waiting for lazy on-access repair.
func (m *Monitor) reconcileReroutes(ctx context.Context, id types.ServerID) {
	c := m.cluster
	for _, r := range c.takeReroutesFrom(ServerID(id)) {
		resp, err := c.net.Send(ctx, -1, id, &transport.Message{Kind: transport.MsgRecover, Key: r.Key})
		if err != nil || resp.AsError() != nil {
			// The server went down again (or the fabric is misbehaving);
			// requeue the reroute so a later recovery retries it.
			c.recordRerouteQuiet(r)
			continue
		}
		c.col.AddCounter(metrics.ReconcileCount, 1)
	}
}

func (m *Monitor) emit(ev MonitorEvent) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(ev)
	}
}
