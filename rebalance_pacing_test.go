package corec

import (
	"context"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// sampleGetP99 runs n foreground reads over the staged objects and returns
// the p50/p99 per-op latency.
func sampleGetP99(t *testing.T, cl *Client, name string, objects, n int) (p50, p99 time.Duration) {
	t.Helper()
	ctx := context.Background()
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		obj := i % objects
		start := time.Now()
		if _, err := cl.Get(ctx, name, churnBox(obj), 1); err != nil {
			t.Fatalf("foreground get %d: %v", i, err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100]
}

// TestRebalancePacingBoundsForeground is the migration-pacing acceptance
// gate: foreground read p99 while a token-bucket-paced rebalance runs must
// stay within a fixed factor (2x) of the churn-free baseline. A small
// absolute floor absorbs scheduler noise on loaded CI machines — the test
// is about the pacing discipline, not microsecond determinism.
func TestRebalancePacingBoundsForeground(t *testing.T) {
	if testing.Short() {
		t.Skip("pacing measurement skipped in -short mode")
	}
	cfg := elasticConfig(8)
	// Pace tightly so the migration genuinely overlaps the sample window.
	cfg.Rebalance = &RebalanceConfig{RateMBps: 1, BurstBytes: 16 << 10}
	c := elasticCluster(t, cfg)
	cl := c.NewClient()
	ctx := context.Background()

	const objects = 24
	committed := seedChurnObjects(t, c, cl, "paced", objects)

	const samples = 400
	// Warm the path, then measure the churn-free baseline.
	sampleGetP99(t, cl, "paced", objects, 100)
	_, base99 := sampleGetP99(t, cl, "paced", objects, samples)

	// Scale out and rebalance in the background while sampling again.
	if _, err := c.JoinNew(); err != nil {
		t.Fatalf("join: %v", err)
	}
	for i := 0; i < 4; i++ {
		c.TickMembership(ctx)
	}
	var done atomic.Bool
	errCh := make(chan error, 1)
	go func() {
		defer done.Store(true)
		_, err := c.Rebalance(ctx)
		errCh <- err
	}()
	_, churn99 := sampleGetP99(t, cl, "paced", objects, samples)
	if err := <-errCh; err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if !done.Load() {
		t.Fatalf("rebalance goroutine not finished")
	}

	floor := 2 * time.Millisecond
	if raceEnabled {
		// Race instrumentation multiplies every op's cost and compresses
		// the baseline/churn gap; keep the bound meaningful, not flaky.
		floor = 10 * time.Millisecond
	}
	limit := 2 * base99
	if limit < floor {
		limit = floor
	}
	if churn99 > limit {
		t.Fatalf("foreground p99 under rebalance %v exceeds 2x baseline %v (limit %v)",
			churn99, base99, limit)
	}
	// Zero-loss check after the dust settles.
	verifyChurnObjects(t, cl, "paced", committed, nil, "post-paced-rebalance")
}

// BenchmarkForegroundWithRebalance mirrors the scrubber benchmark: the
// put/get foreground path measured with live rebalancing off and on,
// reporting p50/p99 per-op latency. The membership subsystem's acceptance
// bar is the two runs' p99 staying in the same band — migration work is
// paid by the migrator's token bucket, not the request path.
func BenchmarkForegroundWithRebalance(b *testing.B) {
	for _, bc := range []struct {
		name      string
		rebalance bool
	}{
		{"rebalance-off", false},
		{"rebalance-on", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := DefaultConfig(8)
			cfg.Mode = PolicyCoREC
			cfg.Seed = 7
			cfg.Membership = &MembershipConfig{Manual: true}
			cfg.Rebalance = &RebalanceConfig{RateMBps: 8, BurstBytes: 64 << 10}
			c, err := NewCluster(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			cl := c.NewClient()
			ctx := context.Background()
			box := Box3D(0, 0, 0, 8, 8, 8)
			data := make([]byte, box.Volume()*8)
			for i := int64(0); i < 16; i++ {
				bg := Box3D(64+i*8, 0, 0, 64+i*8+8, 8, 8)
				bgData := make([]byte, bg.Volume()*8)
				if err := cl.Put(ctx, "cold", bg, 1, bgData); err != nil {
					b.Fatal(err)
				}
			}
			c.EndTimeStep(1)

			stop := make(chan struct{})
			if bc.rebalance {
				if _, err := c.JoinNew(); err != nil {
					b.Fatal(err)
				}
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := c.Rebalance(ctx); err != nil {
							return
						}
					}
				}()
			}

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := Version(i + 2)
				start := time.Now()
				if err := cl.Put(ctx, "hot", box, v, data); err != nil {
					b.Fatal(err)
				}
				if _, err := cl.Get(ctx, "hot", box, v); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(start))
			}
			b.StopTimer()
			close(stop)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
				b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
			}
		})
	}
}
